//! Property-based tests over the substrate's physical invariants, on the
//! in-tree deterministic harness (`gray_toolbox::prop`).

use gray_toolbox::prop::{check, Gen};
use gray_toolbox::Nanos;
use graybox::os::GrayBoxOs;
use simos::disk::Disk;
use simos::fs::Fs;
use simos::{DiskParams, FsParams, Sim, SimConfig};

#[test]
fn disk_service_time_is_bounded_and_monotone() {
    check(
        "disk_service_time_is_bounded_and_monotone",
        48,
        |g: &mut Gen| {
            let requests = g.vec(1..60, |g| (g.u64(0..200_000), g.u64(1..64)));
            let mut disk = Disk::new(DiskParams::small(), 4096);
            let mut now = Nanos::ZERO;
            let full_stroke = gray_toolbox::GrayDuration::from_millis(30);
            for (block, len) in requests {
                let block = block % (disk.blocks() - 64);
                let done = disk.transfer(now, block, len);
                // Time never runs backwards and the disk is busy until `done`.
                assert!(done > now);
                assert_eq!(disk.busy_until(), done);
                // Service ≤ full stroke + full rotation + transfer.
                let transfer = gray_toolbox::GrayDuration::from_secs_f64(
                    len as f64 * 4096.0 / (20u64 << 20) as f64,
                );
                assert!(done.since(now) <= full_stroke + transfer);
                now = done;
            }
        },
    );
}

#[test]
fn sequential_runs_beat_scattered_runs() {
    check("sequential_runs_beat_scattered_runs", 48, |g: &mut Gen| {
        let stride = g.u64(2..1000);
        let mut seq = Disk::new(DiskParams::small(), 4096);
        let mut scattered = Disk::new(DiskParams::small(), 4096);
        let mut t_seq = Nanos::ZERO;
        let mut t_scat = Nanos::ZERO;
        // Position heads identically first.
        t_seq = seq.transfer(t_seq, 0, 1);
        t_scat = scattered.transfer(t_scat, 0, 1);
        for i in 1..64u64 {
            t_seq = seq.transfer(t_seq, i, 1);
            t_scat = scattered.transfer(t_scat, (i * stride * 640) % (scattered.blocks() - 1), 1);
        }
        assert!(
            t_seq < t_scat,
            "sequential {t_seq:?} must beat scattered {t_scat:?} (stride {stride})"
        );
    });
}

#[test]
fn fs_never_double_allocates_blocks() {
    check("fs_never_double_allocates_blocks", 48, |g: &mut Gen| {
        let ops = g.vec(1..80, |g| (g.range(0u8..3), g.usize(0..8), g.u64(1..6)));
        let mut fs = Fs::new(FsParams::default(), 0, 2 * (32 + 4096));
        let mut live: Vec<Option<u64>> = vec![None; 8];
        for (op, slot, pages) in ops {
            match op {
                0 => {
                    if live[slot].is_none() {
                        let ino = fs.create(&format!("/s{slot}"), Nanos::ZERO).unwrap();
                        for p in 0..pages {
                            fs.ensure_block(ino, p).unwrap();
                        }
                        live[slot] = Some(ino);
                    }
                }
                1 => {
                    if live[slot].take().is_some() {
                        fs.unlink(&format!("/s{slot}"), Nanos::ZERO).unwrap();
                    }
                }
                _ => {
                    if let Some(ino) = live[slot] {
                        fs.ensure_block(ino, pages + 3).unwrap();
                    }
                }
            }
            // Invariant: across all live inodes (including directories),
            // every allocated block is unique.
            let mut seen = std::collections::HashSet::new();
            for slot_ino in live.iter().flatten() {
                for &b in &fs.inode(*slot_ino).unwrap().blocks {
                    assert!(seen.insert(b), "block {b} allocated twice");
                }
            }
        }
    });
}

#[test]
fn fs_free_space_is_conserved() {
    check("fs_free_space_is_conserved", 48, |g: &mut Gen| {
        let creates = g.usize(1..20);
        let pages = g.u64(1..8);
        let params = FsParams::default();
        let mut fs = Fs::new(params, 0, 2 * (32 + 4096));
        let initial = fs.free_bytes();
        let mut inos = Vec::new();
        for i in 0..creates {
            let ino = fs.create(&format!("/f{i}"), Nanos::ZERO).unwrap();
            for p in 0..pages {
                fs.ensure_block(ino, p).unwrap();
            }
            inos.push(ino);
        }
        // Root directory may also have grown by a block; account exactly.
        let root_blocks = fs.inode(simos::fs::ROOT_INO).unwrap().blocks.len() as u64;
        let used = creates as u64 * pages + root_blocks;
        assert_eq!(fs.free_bytes(), initial - used * 4096);
        for i in 0..creates {
            fs.unlink(&format!("/f{i}"), Nanos::ZERO).unwrap();
        }
        assert_eq!(fs.free_bytes(), initial - root_blocks * 4096);
    });
}

#[test]
fn virtual_time_is_monotone_across_any_syscall_mix() {
    check(
        "virtual_time_is_monotone_across_any_syscall_mix",
        48,
        |g: &mut Gen| {
            let ops = g.vec(1..60, |g| g.range(0u8..6));
            let mut sim = Sim::new(SimConfig::small());
            sim.run_one(move |os| {
                let mut last = os.now();
                let fd = os.create("/t").unwrap();
                os.write_fill(fd, 0, 64 << 10).unwrap();
                let region = os.mem_alloc(64 << 10).unwrap();
                for (i, op) in ops.iter().enumerate() {
                    match op {
                        0 => {
                            os.read_discard(fd, (i as u64 * 4096) % (64 << 10), 4096)
                                .unwrap();
                        }
                        1 => {
                            os.write_fill(fd, (i as u64 * 4096) % (64 << 10), 512)
                                .unwrap();
                        }
                        2 => {
                            os.mem_touch_write(region, (i as u64) % 16).unwrap();
                        }
                        3 => {
                            let _ = os.stat("/t");
                        }
                        4 => {
                            let _ = os.list_dir("/");
                        }
                        _ => {
                            os.compute(gray_toolbox::GrayDuration::from_micros(3));
                        }
                    }
                    let now = os.now();
                    assert!(now >= last, "time ran backwards at op {i}");
                    last = now;
                }
            });
        },
    );
}

#[test]
fn netbsd_file_pool_is_hard_capped() {
    use graybox::os::GrayBoxOsExt;
    let mut sim = Sim::new(SimConfig::small().with_platform(simos::Platform::NetBsdLike));
    let cache_bytes = (64u64 << 20) / 14;
    sim.run_one(move |os| {
        os.write_file("/pad", &[0u8; 16]).unwrap();
        let fd = os.create("/big").unwrap();
        os.write_fill(fd, 0, cache_bytes * 3).unwrap();
        os.close(fd).unwrap();
    });
    let resident = sim.oracle().resident_pages() as u64 * 4096;
    assert!(
        resident <= cache_bytes + (1 << 20),
        "NetBSD file cache must stay capped: {} MB resident",
        resident >> 20
    );
}
