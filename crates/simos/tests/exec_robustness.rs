//! Executor robustness: panics, baton handoff, and edge conditions of the
//! kernel's resource accounting.

use gray_toolbox::GrayDuration;
use graybox::os::{GrayBoxOs, GrayBoxOsExt, OsError};
use simos::exec::Workload;
use simos::{DiskParams, ExecBackend, FsParams, Sim, SimConfig, SimProc};

#[test]
fn panicking_process_does_not_strand_siblings() {
    for exec in [ExecBackend::Events, ExecBackend::Threads] {
        let mut sim = Sim::new(SimConfig::small().without_noise().with_exec(exec));
        // Run a panicking workload next to a working one. `run` re-raises
        // the process panic (after every sibling has finished), so catch
        // it and check the structured rendering.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let workloads: Vec<(String, Workload<'_, u64>)> = vec![
                (
                    "doomed".to_string(),
                    Box::new(|os: &SimProc| {
                        os.compute(GrayDuration::from_millis(1));
                        panic!("deliberate test panic");
                    }),
                ),
                (
                    "survivor".to_string(),
                    Box::new(|os: &SimProc| {
                        for _ in 0..50 {
                            os.compute(GrayDuration::from_millis(1));
                        }
                        42
                    }),
                ),
            ];
            sim.run(workloads)
        }));
        // The panic must propagate (not deadlock), it must name the
        // culprit — regression: the old executor died a second time on an
        // empty result slot ("workload completed") instead — and the
        // simulation must stay usable afterwards.
        let payload = result.expect_err("the workload panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .expect("run panics with a rendered ProcPanic");
        assert!(
            message.contains("\"doomed\"") && message.contains("deliberate test panic"),
            "{exec:?}: panic must name process and cause, got: {message}"
        );
        let after = sim.run_one(|os| {
            os.write_file("/alive", b"yes").unwrap();
            os.read_to_vec("/alive").unwrap()
        });
        assert_eq!(after, b"yes", "{exec:?}");
    }
}

#[test]
fn many_processes_interleave_and_all_finish() {
    let mut sim = Sim::new(SimConfig::small().without_noise());
    let n = 8;
    let results = sim.run::<u64>(
        (0..n)
            .map(|i| {
                let name = format!("p{i}");
                let wl: Workload<'_, u64> = Box::new(move |os: &SimProc| {
                    let path = format!("/p{i}");
                    let fd = os.create(&path).unwrap();
                    for k in 0..20u64 {
                        os.write_fill(fd, k * 4096, 4096).unwrap();
                        os.compute(GrayDuration::from_micros(50));
                    }
                    os.close(fd).unwrap();
                    os.stat(&path).unwrap().size
                });
                (name, wl)
            })
            .collect(),
    );
    assert_eq!(results, vec![20 * 4096; n]);
}

#[test]
fn sleeping_process_lets_others_run_first() {
    let mut sim = Sim::new(SimConfig::small().without_noise());
    let results = sim.run::<u64>(vec![
        (
            "sleeper".to_string(),
            Box::new(|os: &SimProc| {
                os.sleep(GrayDuration::from_secs(5));
                os.now().as_nanos()
            }),
        ),
        (
            "worker".to_string(),
            Box::new(|os: &SimProc| {
                os.compute(GrayDuration::from_millis(10));
                os.now().as_nanos()
            }),
        ),
    ]);
    assert!(
        results[1] < results[0],
        "the worker must finish while the sleeper sleeps"
    );
}

#[test]
fn filesystem_full_surfaces_no_space() {
    // A tiny disk: writing past its data capacity must yield NoSpace, and
    // the failure must leave the file system consistent.
    let mut cfg = SimConfig::small().without_noise();
    cfg.disks = vec![DiskParams {
        capacity: 40 << 20,
        ..DiskParams::small()
    }];
    cfg.swap_disk = 0;
    cfg.fs = FsParams::default();
    let mut sim = Sim::new(cfg);
    sim.run_one(|os| {
        let fd = os.create("/hog").unwrap();
        let mut off = 0u64;
        let err = loop {
            match os.write_fill(fd, off, 1 << 20) {
                Ok(_) => off += 1 << 20,
                Err(e) => break e,
            }
            assert!(off < 64 << 20, "disk never filled");
        };
        assert_eq!(err, OsError::NoSpace);
        os.close(fd).unwrap();
        // Freeing space makes writes possible again.
        os.unlink("/hog").unwrap();
        os.write_file("/small", b"fits now").unwrap();
        assert_eq!(os.read_to_vec("/small").unwrap(), b"fits now");
    });
}

#[test]
fn swap_exhaustion_surfaces_out_of_memory() {
    // Tiny memory and a tiny swap area: touching far more anonymous
    // memory than memory + swap must fail with OutOfMemory, not hang.
    let mut cfg = SimConfig::small().without_noise();
    cfg.mem_bytes = 16 << 20;
    cfg.kernel_reserve_bytes = 2 << 20;
    cfg.disks = vec![DiskParams {
        capacity: 48 << 20,
        ..DiskParams::small()
    }];
    cfg.swap_disk = 0; // Swap area = top quarter of 48 MB = 12 MB.
    let mut sim = Sim::new(cfg);
    sim.run_one(|os| {
        let total_pages = (14u64 << 20) / 4096 + (12 << 20) / 4096 + 1024;
        let region = os.mem_alloc(total_pages * 4096).unwrap();
        let mut err = None;
        for p in 0..total_pages {
            if let Err(e) = os.mem_touch_write(region, p) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(OsError::OutOfMemory), "swap must exhaust");
        os.mem_free(region).unwrap();
    });
}

#[test]
fn sync_writes_back_dirty_pages() {
    let mut sim = Sim::new(SimConfig::small().without_noise());
    sim.run_one(|os| {
        let fd = os.create("/dirty").unwrap();
        os.write_fill(fd, 0, 4 << 20).unwrap();
        let t0 = os.now();
        os.sync().unwrap();
        let sync_cost = os.now().since(t0);
        // 4 MB of dirty data at 20 MB/s is ~0.2 s of write-back.
        assert!(
            sync_cost > GrayDuration::from_millis(100),
            "sync must pay for the write-back: {sync_cost}"
        );
        // A second sync has nothing left to write.
        let t1 = os.now();
        os.sync().unwrap();
        let resync = os.now().since(t1);
        assert!(
            resync < sync_cost / 10,
            "second sync must be nearly free: {resync} vs {sync_cost}"
        );
        os.close(fd).unwrap();
    });
}

#[test]
fn read_only_probes_do_not_dirty_the_cache() {
    let mut sim = Sim::new(SimConfig::small().without_noise());
    sim.run_one(|os| {
        use graybox::fccd::{Fccd, FccdParams};
        let fd = os.create("/probe_me").unwrap();
        os.write_fill(fd, 0, 8 << 20).unwrap();
        os.sync().unwrap();
        // Probing must not create new dirty state: a sync right after
        // probing is ~free.
        let fccd = Fccd::new(
            os,
            FccdParams {
                access_unit: 2 << 20,
                prediction_unit: 1 << 20,
                ..FccdParams::default()
            },
        );
        let _ = fccd.probe_file(fd, 8 << 20);
        let t0 = os.now();
        os.sync().unwrap();
        let cost = os.now().since(t0);
        assert!(
            cost < GrayDuration::from_millis(5),
            "probes are reads; sync after probing must be cheap: {cost}"
        );
        os.close(fd).unwrap();
    });
}
