//! Regenerates Figure 7: four competing fastsorts, static pass sizes vs
//! gb-fastsort (MAC).
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let sink = repro::init_tracing();
    let scale = Scale::from_args();
    // Measure the touch-batch bound on this figure's machine first, so the
    // sorts run with a calibrated `sched.sub_batch_pages` rather than the
    // compile-time default.
    let repo = repro::fig7::calibrated_repository(scale);
    let fig = repro::fig7::run_with_repository(scale, Some(&repo));
    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.2}s", p.makespan),
                format!("{:.2}s", p.read),
                format!("{:.2}s", p.sort),
                format!("{:.2}s", p.write),
                format!("{:.2}s", p.probe_overhead + p.wait_overhead),
                format!("{} MB", p.mean_pass >> 20),
                p.swap_outs.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 7: Sort with MAC (4 procs x {} MB data, {} MB usable memory)",
            fig.data_per_proc >> 20,
            fig.usable_memory >> 20
        ),
        &[
            "pass",
            "makespan",
            "read",
            "sort",
            "write",
            "mac ovh",
            "mean pass",
            "swapouts",
        ],
        &rows,
    );
    print_paper_note(
        "static passes past the sweet spot page and explode (~30 min at \
         290 MB); gb-fastsort never pages, picks ~154 MB passes, and costs \
         ~1.54x the best static setting (probe + wait overhead)",
    );
    // Traced runs append a scheduler-dispatched FCCD phase so the export
    // carries GuardTransition events (the sweep itself never uses the
    // scheduler).
    if gray_toolbox::trace::enabled() {
        let waves = repro::fig7::traced_guard_phase(scale);
        eprintln!(
            "trace: guard phase dispatched {waves} waves at concurrency {}",
            repro::fig7::PROCS
        );
    }
    repro::finish_tracing(sink);
}
