//! covert-demo: the adversarial covert-channel subsystem, narrated.
//!
//! Each cell is a three-process run — a transmitter encoding a seeded
//! message into shared OS state, a receiver decoding it with gray-box
//! inference, and a defender trying to degrade the channel — on one
//! quiet virtual machine. The demo sweeps both channels (FCCD
//! page-cache residency, WBD dirty-page residue) against the full
//! defender taxonomy and scores every cell, then replays one contested
//! cell with tracing on so the per-process lanes (`covert:tx`,
//! `covert:rx`, `covert:def`) are visible in the timeline.
//!
//! ```text
//! covert-demo [--trace [path]]   # default path gray-trace.jsonl
//! ```
//!
//! With `--trace`, every event streams to JSONL; either way the run
//! ends with the in-process timeline of the replayed cell.

use covert::{message_bits, ChannelKind, ChannelSpec, DefenderKind};
use gray_toolbox::trace;
use gray_toolbox::GrayDuration;
use simos::Platform;

/// The demo's fixed cell shape: 16 bits, 50 ms slots, 4-page groups.
fn spec(index: usize, channel: ChannelKind, defender: DefenderKind) -> ChannelSpec {
    ChannelSpec {
        index,
        platform: Platform::LinuxLike,
        channel,
        defender,
        bits: 16,
        slot: GrayDuration::from_millis(50),
        pages_per_bit: 4,
        seed: 0x00DE_C0DE,
    }
}

fn main() {
    let sink = repro::init_tracing();

    let message = message_bits(0x00DE_C0DE, 16);
    let rendered: String = message.iter().map(|&b| if b { '1' } else { '0' }).collect();
    println!("== covert channels: 16-bit message {rendered}, 50ms slots ==");
    println!();

    let defenders = [
        DefenderKind::Idle,
        DefenderKind::Noise,
        DefenderKind::EagerFlush,
    ];
    for (channel, what) in [
        (ChannelKind::Fccd, "fccd — bits ride page-cache residency"),
        (ChannelKind::Wbd, "wbd  — bits ride dirty-page residue"),
    ] {
        println!("-- {what} --");
        for (i, &defender) in defenders.iter().enumerate() {
            let score = spec(i, channel, defender).run();
            println!(
                "   {:<22} {:>2}/{} errors  ber {:.3}  capacity {:>6.1} bits/s  \
                 tx {:>6}us  def {:>6}us  flusher x{}",
                score.label,
                score.errors,
                score.bits,
                score.ber,
                score.capacity_bps,
                score.transmitter_work_ns / 1_000,
                score.defender_work_ns / 1_000,
                score.flusher_runs
            );
        }
        println!();
    }

    // Replay the contested WBD-vs-noise cell with tracing on: the
    // transmitter's writes, the receiver's per-slot threshold decisions,
    // and the defender's bursts each land on their own process lane.
    if sink.is_none() {
        trace::enable();
    }
    let _ = trace::drain();
    let replay = spec(99, ChannelKind::Wbd, DefenderKind::Noise).run();
    println!(
        "== trace timeline: {} replayed with per-process lanes ==",
        replay.label
    );
    print!("{}", trace::render_timeline(&trace::drain()));
    repro::finish_tracing(sink);
}
