//! Regenerates Figure 2: single-file scan, linear vs gray-box, with the
//! worst-case and ideal models.
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let fig = repro::fig2::run(scale);
    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{} MB", p.file_size >> 20),
                p.linear.to_string(),
                p.graybox.to_string(),
                format!("{:8.3}s", p.model_worst),
                format!("{:8.3}s", p.model_ideal),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 2: Single-File Scan (cache {} MB)",
            fig.cache_bytes >> 20
        ),
        &[
            "file size",
            "linear",
            "gray-box",
            "model worst",
            "model ideal",
        ],
        &rows,
    );
    print_paper_note(
        "linear scan falls off a cliff once the file exceeds the cache \
         (LRU worst case); the gray-box scan tracks the ideal model",
    );
}
