//! Regenerates Table 2 (gray-box techniques in the case studies).
fn main() {
    println!("{}", repro::tables::render_table2());
}
