//! Regenerates Figure 5: small-file ordering on three platforms.
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let fig = repro::fig5::run(scale);
    let rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| {
            vec![
                r.platform.name().to_string(),
                r.random.to_string(),
                format!(
                    "{} ({:.2}x)",
                    r.by_directory,
                    r.by_directory.mean / r.random.mean
                ),
                format!(
                    "{} ({:.2}x)",
                    r.by_inumber,
                    r.by_inumber.mean / r.random.mean
                ),
            ]
        })
        .collect();
    print_table(
        "Figure 5: File Ordering Matters (200 x 8 KB files, 2 directories)",
        &["platform", "random", "by directory", "by i-number"],
        &rows,
    );
    print_paper_note(
        "directory sort saves 10-25%; i-number sort ~6x on Linux/NetBSD \
         and >2x on Solaris",
    );
}
