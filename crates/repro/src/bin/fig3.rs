//! Regenerates Figure 3: grep and fastsort in three versions each.
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let sink = repro::init_tracing();
    let scale = Scale::from_args();
    let fig = repro::fig3::run(scale);
    let mut rows = Vec::new();
    for bars in [&fig.grep, &fig.fastsort] {
        let (gb, gbp) = bars.normalized();
        rows.push(vec![
            bars.app.to_string(),
            bars.unmodified.to_string(),
            format!("{} ({:.2}x)", bars.graybox, gb),
            format!("{} ({:.2}x)", bars.gbp, gbp),
        ]);
    }
    print_table(
        "Figure 3: Application Performance (normalized to unmodified)",
        &["app", "unmodified", "gray-box", "via gbp"],
        &rows,
    );
    print_paper_note(
        "gb-grep ~3x faster (54.3s -> ~18s at paper scale); gbp keeps most \
         of the benefit; fastsort (55s read phase) benefits less because \
         its heap and write buffering compete for memory",
    );
    repro::finish_tracing(sink);
}
