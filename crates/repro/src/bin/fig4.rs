//! Regenerates Figure 4: multi-platform scans and searches.
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let fig = repro::fig4::run(scale);
    let mut rows = Vec::new();
    for row in &fig.rows {
        let (scan_warm, scan_gray) = row.scan.normalized();
        let (search_warm, search_gray) = row.search.normalized();
        rows.push(vec![
            row.platform.name().to_string(),
            format!("{:.3}s", row.scan.cold.mean),
            format!("{scan_warm:.2}"),
            format!("{scan_gray:.2}"),
            format!("{:.3}s", row.search.cold.mean),
            format!("{search_warm:.2}"),
            format!("{search_gray:.2}"),
        ]);
    }
    print_table(
        "Figure 4: Multi-Platform (normalized to the cold run per cell)",
        &[
            "platform",
            "scan cold",
            "scan warm",
            "scan gray",
            "search cold",
            "search warm",
            "search gray",
        ],
        &rows,
    );
    print_paper_note(
        "Linux warm scans stay at disk rate while gray wins; NetBSD's \
         fixed cache shows the best case on a small file; Solaris warm \
         rescans do well even unmodified (sticky cache); the gray-box \
         search wins everywhere because the match is in a cached file",
    );
}
