//! Runs every table and figure reproduction in sequence.
use repro::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("{}", repro::tables::render_table1());
    println!("{}", repro::tables::render_table2());
    for (name, f) in [
        ("fig1", run_fig1 as fn(Scale)),
        ("fig2", run_fig2),
        ("fig3", run_fig3),
        ("fig4", run_fig4),
        ("fig5", run_fig5),
        ("fig6", run_fig6),
        ("fig7", run_fig7),
        ("sleds", run_sleds),
    ] {
        eprintln!(">>> running {name}");
        f(scale);
    }
}

fn run_fig1(scale: Scale) {
    let fig = repro::fig1::run(scale);
    println!(
        "fig1: {} series x {} prediction units",
        fig.cells.len(),
        fig.prediction_units.len()
    );
}
fn run_fig2(scale: Scale) {
    let fig = repro::fig2::run(scale);
    println!(
        "fig2: {} sweep points (cache {} MB)",
        fig.points.len(),
        fig.cache_bytes >> 20
    );
}
fn run_fig3(scale: Scale) {
    let fig = repro::fig3::run(scale);
    let (g, _) = fig.grep.normalized();
    let (s, _) = fig.fastsort.normalized();
    println!("fig3: gb-grep {g:.2}x, gb-fastsort {s:.2}x");
}
fn run_fig4(scale: Scale) {
    let fig = repro::fig4::run(scale);
    println!("fig4: {} platform rows", fig.rows.len());
}
fn run_fig5(scale: Scale) {
    let fig = repro::fig5::run(scale);
    println!("fig5: {} platform rows", fig.rows.len());
}
fn run_fig6(scale: Scale) {
    let fig = repro::fig6::run(scale);
    println!("fig6: {} epochs", fig.points.len());
}
fn run_fig7(scale: Scale) {
    let fig = repro::fig7::run(scale);
    println!("fig7: {} sweep points", fig.points.len());
}
fn run_sleds(scale: Scale) {
    let r = repro::sleds::run(scale);
    println!(
        "sleds: FCCD captured {:.0}% of the SLED utility",
        r.utility_captured * 100.0
    );
}
