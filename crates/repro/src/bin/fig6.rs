//! Regenerates Figure 6: file-system aging and the directory refresh.
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let fig = repro::fig6::run(scale);
    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|p| {
            vec![
                format!(
                    "{}{}",
                    p.epoch,
                    if p.epoch == fig.refresh_epoch {
                        " *refresh*"
                    } else {
                        ""
                    }
                ),
                format!("{:.4}s", p.random),
                format!("{:.4}s", p.inumber),
            ]
        })
        .collect();
    print_table(
        "Figure 6: Aging (100 files; 5 deleted + 5 created per epoch)",
        &["epoch", "random order", "i-number order"],
        &rows,
    );
    print_paper_note(
        "i-number order is excellent fresh, degrades >3x by epoch 30, and \
         snaps back after the refresh at epoch 31; random stays poor",
    );
}
