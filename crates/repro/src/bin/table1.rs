//! Regenerates Table 1 (gray-box techniques in existing systems) with
//! measured evidence from the prior-art mini-simulations.
fn main() {
    println!("{}", repro::tables::render_table1());
}
