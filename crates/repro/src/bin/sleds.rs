//! FCCD vs a kernel-supported SLED (the modified-OS comparator).
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let r = repro::sleds::run(scale);
    let rows = vec![
        vec!["linear (no info)".to_string(), r.linear.to_string()],
        vec!["FCCD (gray-box)".to_string(), r.fccd.to_string()],
        vec!["SLED (modified kernel)".to_string(), r.sled.to_string()],
        vec!["ideal model".to_string(), format!("{:8.3}s", r.model_ideal)],
    ];
    print_table(
        "FCCD vs SLEDs (partially cached scan)",
        &["strategy", "time"],
        &rows,
    );
    println!(
        "FCCD captured {:.0}% of the SLED's improvement over the uninformed scan",
        r.utility_captured * 100.0
    );
    print_paper_note(
        "\"a great deal of the utility of their proposed system can be \
         obtained without any modification to the operating system\"",
    );
}
