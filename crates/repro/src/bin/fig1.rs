//! Regenerates Figure 1: probe correlation vs prediction-unit size.
use repro::{print_paper_note, print_table, Scale};

fn main() {
    let sink = repro::init_tracing();
    let scale = Scale::from_args();
    let fig = repro::fig1::run(scale);
    let mut header = vec!["pred unit".to_string()];
    for &au in &fig.access_units {
        header.push(format!("AU {:.2} MB", au as f64 / (1 << 20) as f64));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (x, &pu) in fig.prediction_units.iter().enumerate() {
        let mut row = vec![format!("{:.2} MB", pu as f64 / (1 << 20) as f64)];
        for series in &fig.cells {
            row.push(format!("{:.2} ±{:.2}", series[x].mean, series[x].stddev));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure 1: Probe Correlation (file {} MB)",
            fig.file_size >> 20
        ),
        &header_refs,
        &rows,
    );
    print_paper_note(
        "correlation is high while the prediction unit is <= the access \
         unit and falls off noticeably beyond it",
    );
    repro::finish_tracing(sink);
}
