//! gbd-demo: two tenants sharing one inference daemon.
//!
//! A narrated walk through the daemon's moving parts on a four-disk
//! machine: two tenants query the same daemon, their probe plans pool
//! into shared scheduler waves, repeats hit the inference cache, and a
//! churned file shows the churn-aware staleness policy evicting and
//! re-inferring a contradicted entry.
//!
//! ```text
//! gbd-demo [--trace [path]]      # default path gray-trace.jsonl
//! ```
//!
//! With `--trace`, every event streams to JSONL; either way the run ends
//! with the in-process timeline (`render_timeline`) of the last ticks.

use gbd::{render_gray_top, Gbd, GbdConfig, Query, Reply};
use gray_sched::SchedConfig;
use gray_toolbox::trace;
use graybox::fccd::FccdParams;
use simos::scenario;

fn main() {
    let sink = repro::init_tracing();
    if sink.is_none() {
        // No JSONL sink: still capture into the ring for the timeline.
        trace::enable();
    }

    let disks = 4;
    let mut sim = scenario::daemon_machine(disks, disks);
    let files = scenario::spread_corpus(&mut sim, disks, 2, 1 << 20);
    // Warm one file per disk so FCCD has real structure to find.
    let warm: Vec<_> = files.iter().step_by(2).cloned().collect();
    scenario::warm(&mut sim, &warm);

    let cfg = GbdConfig {
        // Long TTL so tick 3 exercises churn invalidation, not expiry.
        cache_ttl: gray_toolbox::GrayDuration::from_secs(600),
        fccd: FccdParams {
            access_unit: 1 << 20,
            prediction_unit: 256 << 10,
            ..FccdParams::default()
        },
        // Sub-batch 1 so concurrent plans interleave probe by probe and
        // the tenants' disk waits genuinely overlap within a wave.
        sched: SchedConfig {
            concurrency: disks,
            sub_batch: 1,
            ..SchedConfig::default()
        },
        ..GbdConfig::default()
    };
    let policy = cfg.churn_policy();
    let mut gbd = Gbd::new(cfg, Box::new(policy));
    let alice = gbd.register_tenant("alice").expect("tenant slot");
    let bob = gbd.register_tenant("bob").expect("tenant slot");

    // Alice watches the first two disks' files, Bob the other two: their
    // plans land on different disks, so one shared wave overlaps them.
    let half = files.len() / 2;
    let alice_q = Query::FccdClassify {
        files: files[..half].to_vec(),
    };
    let bob_q = Query::FccdClassify {
        files: files[half..].to_vec(),
    };

    println!("== tick 1: cold cache, both tenants probe (shared waves) ==");
    let t_a = alice.submit(alice_q.clone());
    let t_b = bob.submit(bob_q.clone());
    let tick = gbd.serve(&mut sim);
    println!(
        "   {} queries, {} executed, {} hits; budget {}",
        tick.queries, tick.executed, tick.hits, tick.budget
    );
    for (name, client, ticket) in [("alice", &alice, t_a), ("bob", &bob, t_b)] {
        let resp = client.take(ticket).expect("served");
        if let Reply::Classified {
            cached, uncached, ..
        } = &resp.reply
        {
            println!(
                "   {name}: {} cached / {} uncached (from_cache={})",
                cached.len(),
                uncached.len(),
                resp.from_cache
            );
        }
    }

    println!("== tick 2: repeats hit the cache; bob asks MAC too ==");
    let t_a = alice.submit(alice_q.clone());
    let t_b = bob.submit(bob_q);
    let t_m = bob.submit(Query::MacAvailable { ceiling: 16 << 20 });
    let tick = gbd.serve(&mut sim);
    println!(
        "   {} queries, {} hits, {} executed",
        tick.queries, tick.hits, tick.executed
    );
    assert!(alice.take(t_a).expect("served").from_cache);
    assert!(bob.take(t_b).expect("served").from_cache);
    if let Reply::Available { bytes } = bob.take(t_m).expect("served").reply {
        println!("   bob: ~{} MB available", bytes >> 20);
    }

    println!("== churn: evict everything, re-warm the other half ==");
    let rewarm: Vec<_> = files.iter().skip(1).step_by(2).cloned().collect();
    scenario::churn(&mut sim, &rewarm);

    println!("== tick 3: alice re-probes; churn-aware policy re-infers ==");
    // Alice's entry has TTL left, but her files' residency flipped. A
    // fresh probe pass (bob probing an overlapping superset, a distinct
    // cache key) contradicts her entry and forces a re-inference.
    let t_b = bob.submit(Query::FccdClassify {
        files: files[..half + 1].to_vec(),
    });
    let tick = gbd.serve(&mut sim);
    println!(
        "   {} executed, {} invalidated-and-reinfered",
        tick.executed, tick.reinfers
    );
    let _ = bob.take(t_b);
    let t_a = alice.submit(alice_q);
    let tick = gbd.serve(&mut sim);
    println!(
        "   alice repeats her query: {} hits (re-inferred entry)",
        tick.hits
    );
    let _ = alice.take(t_a);

    println!();
    println!("== per-tenant accounting ==");
    for t in gbd.tenants() {
        println!(
            "   {:<8} lane {:>3}: {} queries, {} hits, {} shed",
            t.name, t.lane, t.stats.queries, t.stats.hits, t.stats.shed
        );
    }
    let s = gbd.stats();
    println!(
        "   daemon: {} ticks, {} queries, {} hits, {} coalesced, {} shed, \
         {} reinfers, {} waves",
        s.ticks, s.queries, s.hits, s.coalesced, s.shed, s.reinfers, s.waves
    );

    println!();
    println!("== gray-top: metrics snapshot via the query path ==");
    // The snapshot is itself a query: it rides the same submit/serve/take
    // path as inference, costs zero virtual time, and is never cached.
    let t_m = alice.submit(Query::MetricsSnapshot);
    gbd.serve(&mut sim);
    let resp = alice.take(t_m).expect("served");
    if let Reply::Metrics(m) = resp.reply {
        print!("{}", render_gray_top(&m));
        println!("METRICS_JSON {}", m.to_json());
    }
    println!(
        "REGISTRY_JSON {}",
        gray_toolbox::metrics::global().snapshot().to_json()
    );

    println!();
    println!("== trace timeline (per wave, per tenant/plan lane) ==");
    print!("{}", trace::render_timeline(&trace::drain()));
    repro::finish_tracing(sink);
}
