//! Figure 4 — **Multi-Platform Experiments**: repeated large-file scans
//! and multi-file searches on the three OS personalities, each point shown
//! as cold-cache / warm-cache / warm-gray-box, normalized to the cold run.
//!
//! The paper's findings this figure must reproduce:
//!
//! - **Linux**: warm linear rescans of a larger-than-cache file run at
//!   disk speed (LRU worst case); gray-box rescans are much faster.
//! - **NetBSD**: the file cache is a fixed 64 MB, so a 1 GB warm scan is
//!   hopeless either way; the paper instead scans a file sized to the
//!   small cache to show the best case, which is what we do (scaled).
//! - **Solaris**: warm rescans do well *even unmodified* — the sticky
//!   cache retains a fixed portion of the file — and that portion is hard
//!   to dislodge.
//! - **Search**: with the match in a cached file given last on the command
//!   line, the unmodified search reads everything while the gray-box
//!   search goes to the cached file first, on every platform — gray-box
//!   pays off even under non-LRU replacement.

use gray_apps::grep::{Grep, GrepMode, GrepOptions, Needle};
use gray_apps::scan::{graybox_scan, linear_scan};
use gray_apps::workload::{make_file, make_files};
use graybox::os::GrayBoxOs;
use simos::{Platform, Sim};

use crate::{Scale, TrialStats};

/// The three bars for one (platform, benchmark) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Bars {
    /// Cold-cache traditional run (the normalization basis).
    pub cold: TrialStats,
    /// Warm-cache traditional runs.
    pub warm: TrialStats,
    /// Warm-cache gray-box runs.
    pub gray: TrialStats,
}

impl Bars {
    /// (warm, gray) normalized to cold.
    pub fn normalized(&self) -> (f64, f64) {
        (
            self.warm.mean / self.cold.mean,
            self.gray.mean / self.cold.mean,
        )
    }
}

/// One platform's row.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// The personality.
    pub platform: Platform,
    /// Large-file scan bars.
    pub scan: Bars,
    /// Multi-file search bars.
    pub search: Bars,
}

/// The figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// One row per platform.
    pub rows: Vec<PlatformRow>,
}

/// Runs all six cells.
pub fn run(scale: Scale) -> Fig4 {
    let rows = [
        Platform::LinuxLike,
        Platform::NetBsdLike,
        Platform::SolarisLike,
    ]
    .into_iter()
    .map(|p| PlatformRow {
        platform: p,
        scan: run_scan(scale, p),
        search: run_search(scale, p),
    })
    .collect();
    Fig4 { rows }
}

fn run_scan(scale: Scale, platform: Platform) -> Bars {
    let cfg = scale.sim_config().with_platform(platform);
    // Paper file sizes: 1 GB on Linux/Solaris; 65 MB on NetBSD (sized just
    // above its fixed 64 MB cache to show the best case).
    let file_size = match platform {
        Platform::NetBsdLike => scale.bytes(65 << 20),
        _ => scale.bytes(1 << 30),
    }
    .next_multiple_of(cfg.page_size);
    let chunk = 1u64 << 20;
    let trials = scale.trials();
    // FCCD units must be meaningfully finer than the cache for a
    // file-size ≈ cache-size scenario; NetBSD's fixed cache is tiny, so
    // its cell uses proportionally finer units (the paper tunes these by
    // microbenchmark per platform).
    let params = match platform {
        Platform::NetBsdLike => {
            let cache = match cfg.cache_arch() {
                simos::CacheArch::SplitFixed { file_cache_bytes } => file_cache_bytes,
                _ => unreachable!("NetBSD personality uses a fixed file cache"),
            };
            graybox::fccd::FccdParams {
                access_unit: (cache / 16).next_multiple_of(cfg.page_size),
                prediction_unit: (cache / 64).next_multiple_of(cfg.page_size),
                ..graybox::fccd::FccdParams::default()
            }
        }
        _ => scale.fccd_params(),
    };

    let mut sim = Sim::new(cfg);
    sim.run_one(|os| make_file(os, "/scanfile", file_size).unwrap());

    // Cold.
    sim.flush_file_cache();
    let cold = vec![
        sim.run_one(|os| linear_scan(os, "/scanfile", chunk).unwrap())
            .elapsed,
    ];
    // Warm traditional (repeated runs; the cold run above warmed it).
    let mut warm = Vec::with_capacity(trials);
    for _ in 0..trials {
        warm.push(
            sim.run_one(|os| linear_scan(os, "/scanfile", chunk).unwrap())
                .elapsed,
        );
    }
    // Warm gray-box: restart from a flush, let one gray run establish the
    // access-unit feedback, then measure.
    sim.flush_file_cache();
    let p0 = params.clone();
    sim.run_one(|os| graybox_scan(os, "/scanfile", p0, chunk).unwrap());
    let mut gray = Vec::with_capacity(trials);
    for _ in 0..trials {
        let p = params.clone();
        gray.push(
            sim.run_one(|os| graybox_scan(os, "/scanfile", p, chunk).unwrap())
                .elapsed,
        );
    }
    Bars {
        cold: TrialStats::of(&cold),
        warm: TrialStats::of(&warm),
        gray: TrialStats::of(&gray),
    }
}

fn run_search(scale: Scale, platform: Platform) -> Bars {
    let cfg = scale.sim_config().with_platform(platform);
    let file_bytes = scale.bytes(10 << 20);
    let count = 100usize;
    let trials = scale.trials();
    let params = scale.fccd_params();
    let opts = GrepOptions {
        stop_at_first_match: true,
        ..GrepOptions::default()
    };

    let mut sim = Sim::new(cfg);
    let paths = sim.run_one(|os| make_files(os, "/corpus", count, file_bytes).unwrap());
    // "The matching string is located in a cached file which is specified
    // last on the command-line."
    let target = paths.last().expect("count > 0").clone();
    let needle = Needle::SyntheticIn(Some(target.clone()));

    // Cold: nothing cached, traditional order.
    sim.flush_file_cache();
    let cold = {
        let paths = paths.clone();
        let needle = needle.clone();
        let opts = opts.clone();
        vec![sim.run_one(move |os| {
            Grep::new(os, opts)
                .run(&paths, &needle, &GrepMode::Unmodified)
                .unwrap()
                .elapsed
        })]
    };

    let warm_target = |sim: &mut Sim, target: &str| {
        sim.flush_file_cache();
        let t = target.to_string();
        let bytes = file_bytes;
        sim.run_one(move |os| {
            let fd = os.open(&t).unwrap();
            os.read_discard(fd, 0, bytes).unwrap();
            os.close(fd).unwrap();
        });
    };

    // Warm traditional: match file cached, but the scan order is fixed.
    let mut warm = Vec::with_capacity(trials);
    for _ in 0..trials {
        warm_target(&mut sim, &target);
        let paths = paths.clone();
        let needle = needle.clone();
        let opts = opts.clone();
        warm.push(sim.run_one(move |os| {
            Grep::new(os, opts)
                .run(&paths, &needle, &GrepMode::Unmodified)
                .unwrap()
                .elapsed
        }));
    }
    // Warm gray-box: probes find the cached file first.
    let mut gray = Vec::with_capacity(trials);
    for _ in 0..trials {
        warm_target(&mut sim, &target);
        let paths = paths.clone();
        let needle = needle.clone();
        let opts = opts.clone();
        let params = params.clone();
        gray.push(sim.run_one(move |os| {
            Grep::new(os, opts)
                .run(&paths, &needle, &GrepMode::GrayBox(params))
                .unwrap()
                .elapsed
        }));
    }
    Bars {
        cold: TrialStats::of(&cold),
        warm: TrialStats::of(&warm),
        gray: TrialStats::of(&gray),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_at_small_scale() {
        let fig = run(Scale::Small);
        let linux = &fig.rows[0];
        let netbsd = &fig.rows[1];
        let solaris = &fig.rows[2];
        assert_eq!(linux.platform, Platform::LinuxLike);

        // Linux scan: warm ≈ cold (LRU worst case), gray much better.
        let (warm, gray) = linux.scan.normalized();
        assert!(
            warm > 0.8,
            "Linux warm scan should stay near cold: {warm:.2}"
        );
        assert!(gray < 0.6, "Linux gray scan must win: {gray:.2}");

        // NetBSD best-case scan: the file slightly exceeds the fixed
        // cache, so the warm traditional scan is still the LRU worst case
        // while the gray-box scan keeps almost everything.
        let (warm, gray) = netbsd.scan.normalized();
        assert!(warm > 0.8, "NetBSD warm scan stays near cold: {warm:.2}");
        assert!(
            gray < 0.7 && gray < warm * 0.7,
            "NetBSD gray scan must win: gray {gray:.2} vs warm {warm:.2}"
        );

        // Solaris: even the *unmodified* warm rescan does well — the
        // sticky cache keeps a fixed portion of the file.
        let (warm, _gray) = solaris.scan.normalized();
        assert!(
            warm < 0.8,
            "Solaris warm rescans partially hit without gray-box help: {warm:.2}"
        );

        // Search: on every platform the gray-box search finds the cached
        // match far faster than the warm traditional search.
        for row in &fig.rows {
            let (warm, gray) = row.search.normalized();
            assert!(
                gray < warm * 0.3,
                "{:?} search: gray {gray:.2} vs warm {warm:.2}",
                row.platform
            );
        }
    }
}
