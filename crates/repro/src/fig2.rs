//! Figure 2 — **Single-File Scan**: total access time over repeated
//! (warm-cache) runs as file size sweeps across the file-cache size, for a
//! traditional linear scan versus the gray-box scan, with the paper's two
//! analytic models (predicted worst case: everything from disk; predicted
//! ideal: cached data at memory-copy rate, the rest from disk).
//!
//! Expected shape: the linear scan falls off a cliff once the file exceeds
//! the cache (LRU worst case: every run fetches everything), while the
//! gray-box scan grows gently — its I/O is proportional to
//! `file size − cache size`.

use gray_apps::scan::{graybox_scan, linear_scan};
use gray_apps::workload::make_file;
use gray_toolbox::GrayDuration;
use simos::Sim;

use crate::{Scale, TrialStats};

/// One x-axis point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// File size in bytes.
    pub file_size: u64,
    /// Warm repeated linear scan.
    pub linear: TrialStats,
    /// Warm repeated gray-box scan.
    pub graybox: TrialStats,
    /// Predicted worst case (all data from disk), seconds.
    pub model_worst: f64,
    /// Predicted ideal (cache at memory rate, remainder from disk),
    /// seconds.
    pub model_ideal: f64,
}

/// The figure.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Measured sweep points.
    pub points: Vec<Point>,
    /// The cache size in bytes (the crossover).
    pub cache_bytes: u64,
}

/// Runs the sweep.
pub fn run(scale: Scale) -> Fig2 {
    let cfg = scale.sim_config();
    let cache_bytes = cfg.usable_pages() * cfg.page_size;
    let disk_bw = cfg.disks[0].bandwidth as f64;
    // Effective memory-copy rate for a cached page visible to a scan.
    let mem_rate =
        cfg.page_size as f64 / (cfg.costs.copy_per_page + cfg.costs.page_lookup).as_secs_f64();
    let fractions = [0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5];
    let chunk = 1u64 << 20;
    let trials = scale.trials();
    let params = scale.fccd_params();

    let mut points = Vec::new();
    for &f in &fractions {
        let file_size = ((cache_bytes as f64 * f) as u64 / cfg.page_size).max(4) * cfg.page_size;
        // Fresh machine per point so sweeps are independent.
        let mut sim = Sim::new(cfg.clone());
        sim.run_one(|os| make_file(os, "/sweep", file_size).unwrap());

        sim.flush_file_cache();
        let mut linear_times: Vec<GrayDuration> = Vec::with_capacity(trials);
        for _ in 0..trials {
            linear_times.push(
                sim.run_one(|os| linear_scan(os, "/sweep", chunk).unwrap())
                    .elapsed,
            );
        }

        sim.flush_file_cache();
        let mut gray_times: Vec<GrayDuration> = Vec::with_capacity(trials);
        for _ in 0..trials {
            let p = params.clone();
            gray_times.push(
                sim.run_one(|os| graybox_scan(os, "/sweep", p, chunk).unwrap())
                    .elapsed,
            );
        }

        let cached = file_size.min(cache_bytes) as f64;
        let uncached = file_size.saturating_sub(cache_bytes) as f64;
        points.push(Point {
            file_size,
            linear: TrialStats::of(&linear_times),
            graybox: TrialStats::of(&gray_times),
            model_worst: file_size as f64 / disk_bw,
            model_ideal: cached / mem_rate + uncached / disk_bw,
        });
    }
    Fig2 {
        points,
        cache_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_at_small_scale() {
        let fig = run(Scale::Small);
        let below: Vec<&Point> = fig
            .points
            .iter()
            .filter(|p| p.file_size < fig.cache_bytes * 9 / 10)
            .collect();
        let above: Vec<&Point> = fig
            .points
            .iter()
            .filter(|p| p.file_size > fig.cache_bytes * 11 / 10)
            .collect();
        assert!(!below.is_empty() && !above.is_empty());

        // Below the cache size, the warm linear scan runs near memory
        // speed — far better than the all-disk model.
        for p in &below {
            assert!(
                p.linear.mean < p.model_worst * 0.5,
                "below-cache point should be mostly cached: {p:?}"
            );
        }
        // Above the cache size, the linear scan hits the LRU worst case
        // (approximately the all-disk model), while the gray-box scan
        // stays well below it.
        for p in &above {
            assert!(
                p.linear.mean > p.model_worst * 0.7,
                "above-cache linear should approach worst case: {p:?}"
            );
            assert!(
                p.graybox.mean < p.linear.mean * 0.75,
                "gray-box must beat linear above the cache size: {p:?}"
            );
            assert!(
                p.graybox.mean < p.model_worst,
                "gray-box must beat the worst-case model: {p:?}"
            );
        }
        // The gray-box curve grows with file size (more uncached data).
        let g: Vec<f64> = fig.points.iter().map(|p| p.graybox.mean).collect();
        assert!(g.last().unwrap() > g.first().unwrap());
    }
}
