//! FCCD versus SLEDs (paper Section 4.1): how close does the gray-box
//! detector get to the kernel-supported ideal?
//!
//! FCCD was inspired by Van Meter and Gao's Storage Latency Estimation
//! Descriptors (OSDI 2000), an interface that returns predicted access
//! times per file section — *implemented by modifying the Linux kernel*.
//! The paper's claim: "a great deal of the utility of their proposed
//! system can be obtained without any modification to the operating
//! system." This experiment quantifies that claim on the simulator, where
//! we can build the genuine article: a SLED backed by the kernel's own
//! presence bitmap (the oracle).
//!
//! Four strategies scan the same partially-cached file:
//!
//! 1. **linear** — no information at all;
//! 2. **fccd** — gray-box probing (this library);
//! 3. **sled** — perfect per-unit residency from the modified kernel,
//!    same access-unit machinery otherwise;
//! 4. the analytic **ideal** model (cached bytes at memory rate).

use gray_apps::scan::{graybox_scan, linear_scan};
use gray_apps::workload::make_file;
use gray_toolbox::GrayDuration;
use graybox::os::GrayBoxOs;
use simos::Sim;

use crate::{Scale, TrialStats};

/// The comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct Sleds {
    /// Uninformed linear scan.
    pub linear: TrialStats,
    /// Gray-box FCCD-ordered scan.
    pub fccd: TrialStats,
    /// Kernel-bitmap (oracle) ordered scan — the modified-OS ideal.
    pub sled: TrialStats,
    /// Analytic ideal, seconds.
    pub model_ideal: f64,
    /// Fraction of the SLED's improvement over linear that FCCD captured,
    /// in [0, 1]-ish (can exceed 1 if FCCD happens to beat the SLED run).
    pub utility_captured: f64,
}

/// Runs the comparison in the paper's repeated-scan regime: a file at
/// 150% of the cache, warmed by a previous sequential pass (so an
/// uninformed rescan is the LRU worst case, while an informed reader can
/// harvest the resident tail).
pub fn run(scale: Scale) -> Sleds {
    let cfg = scale.sim_config();
    let cache_bytes = cfg.usable_pages() * cfg.page_size;
    let file_size = cache_bytes / 2 * 3;
    let params = scale.fccd_params();
    let unit = params.access_unit;
    let chunk = 1u64 << 20;
    let trials = scale.trials();
    let disk_bw = cfg.disks[0].bandwidth as f64;
    let mem_rate =
        cfg.page_size as f64 / (cfg.costs.copy_per_page + cfg.costs.page_lookup).as_secs_f64();

    let mut sim = Sim::new(cfg);
    sim.run_one(|os| make_file(os, "/sled", file_size).unwrap());

    // The warm state every strategy starts from: the residue of one
    // sequential pass (flush first so trials are identical).
    let prepare = |sim: &mut Sim| {
        sim.flush_file_cache();
        sim.run_one(|os| {
            let fd = os.open("/sled").unwrap();
            os.read_discard(fd, 0, file_size).unwrap();
            os.close(fd).unwrap();
        });
    };

    let mut linear_times = Vec::with_capacity(trials);
    let mut fccd_times = Vec::with_capacity(trials);
    let mut sled_times = Vec::with_capacity(trials);
    for _trial in 0..trials as u64 {
        // Linear rescan: the LRU worst case.
        prepare(&mut sim);
        linear_times.push(
            sim.run_one(|os| linear_scan(os, "/sled", chunk).unwrap())
                .elapsed,
        );

        // FCCD.
        prepare(&mut sim);
        let p = params.clone();
        fccd_times.push(
            sim.run_one(move |os| graybox_scan(os, "/sled", p, chunk).unwrap())
                .elapsed,
        );

        // SLED: rank units by the kernel's own presence bitmap, cached
        // fraction descending — no probes at all.
        prepare(&mut sim);
        let bitmap = sim.oracle().file_presence("/sled").unwrap();
        let unit_pages = (unit / 4096) as usize;
        let mut ranked: Vec<(usize, usize)> = bitmap
            .chunks(unit_pages)
            .enumerate()
            .map(|(u, pages)| (u, pages.iter().filter(|&&b| !b).count()))
            .collect();
        ranked.sort_by_key(|&(u, missing)| (missing, u));
        let order: Vec<u64> = ranked.into_iter().map(|(u, _)| u as u64).collect();
        sled_times.push(sim.run_one(move |os| {
            let t0 = os.now();
            let fd = os.open("/sled").unwrap();
            for u in order {
                let off = u * unit;
                let len = unit.min(file_size - off);
                let mut done = 0u64;
                while done < len {
                    let want = chunk.min(len - done);
                    let n = os.read_discard(fd, off + done, want).unwrap();
                    if n == 0 {
                        break;
                    }
                    done += n;
                }
            }
            os.close(fd).unwrap();
            os.now().since(t0)
        }));
    }

    let linear = TrialStats::of(&linear_times);
    let fccd = TrialStats::of(&fccd_times);
    let sled = TrialStats::of(&sled_times);
    let cached = cache_bytes.min(file_size) as f64;
    let model_ideal = cached / mem_rate + (file_size as f64 - cached) / disk_bw;
    let utility_captured = if linear.mean > sled.mean {
        ((linear.mean - fccd.mean) / (linear.mean - sled.mean)).max(0.0)
    } else {
        1.0
    };
    Sleds {
        linear,
        fccd,
        sled,
        model_ideal,
        utility_captured,
    }
}

/// A GrayDuration mean helper for display.
pub fn fmt_secs(d: GrayDuration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fccd_captures_most_of_the_sled_utility() {
        let r = run(Scale::Small);
        // The SLED (modified kernel) is the floor; FCCD must land nearby,
        // and both must beat the uninformed scan.
        assert!(
            r.sled.mean < r.linear.mean * 0.8,
            "SLED must beat linear: {r:?}"
        );
        assert!(
            r.fccd.mean < r.linear.mean * 0.9,
            "FCCD must beat linear: {r:?}"
        );
        assert!(
            r.utility_captured > 0.6,
            "the paper claims 'a great deal of the utility': captured {:.2}",
            r.utility_captured
        );
        // And the gray-box layer can never beat perfect information by
        // much (sanity against accounting bugs).
        assert!(r.fccd.mean > r.sled.mean * 0.8, "{r:?}");
    }
}
