//! Figure 3 — **Application Performance**: `grep` and `fastsort`, each in
//! three versions — unmodified, gray-box (linked against the library), and
//! unmodified-plus-`gbp` — normalized to the unmodified version.
//!
//! The paper's workloads: grep over 100 × 10 MB files with a warm cache
//! (54.3 s unmodified, gb-grep ≈ 3× faster, gbp nearly as good minus
//! fork/exec and redundant opens); fastsort's read phase over a 1 GB
//! record file whose cache contents are refreshed before each run to
//! simulate a create-then-sort pipeline (55 s unmodified; the benefit is
//! smaller than grep's because the sort's own heap and write buffering
//! compete for memory).

use gray_apps::gbp::{Gbp, GbpMode};
use gray_apps::grep::{Grep, GrepMode, GrepOptions, Needle};
use gray_apps::workload::{make_file, make_files};
use gray_toolbox::GrayDuration;
use graybox::fccd::{Fccd, FccdParams};
use graybox::os::GrayBoxOs;
use simos::Sim;

use crate::{Scale, TrialStats};

/// One application's three bars, in seconds (and normalized).
#[derive(Debug, Clone, PartialEq)]
pub struct AppBars {
    /// Application name.
    pub app: &'static str,
    /// Unmodified version.
    pub unmodified: TrialStats,
    /// Gray-box (library-linked) version.
    pub graybox: TrialStats,
    /// Unmodified fed by the gbp utility.
    pub gbp: TrialStats,
}

impl AppBars {
    /// (gray-box, gbp) runtimes normalized to unmodified.
    pub fn normalized(&self) -> (f64, f64) {
        (
            self.graybox.mean / self.unmodified.mean,
            self.gbp.mean / self.unmodified.mean,
        )
    }
}

/// The figure: grep bars and fastsort (read phase) bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// grep over the multi-file corpus.
    pub grep: AppBars,
    /// fastsort's read phase.
    pub fastsort: AppBars,
}

/// Runs both application experiments.
pub fn run(scale: Scale) -> Fig3 {
    Fig3 {
        grep: run_grep(scale),
        fastsort: run_fastsort(scale),
    }
}

fn run_grep(scale: Scale) -> AppBars {
    let cfg = scale.sim_config();
    let file_bytes = scale.bytes(10 << 20);
    let count = 100usize;
    let params = scale.fccd_params();
    let trials = scale.trials();
    let needle = Needle::SyntheticIn(None);
    let opts = GrepOptions::default();

    let measure = |mode: MeasureMode| -> TrialStats {
        let mut sim = Sim::new(cfg.clone());
        let paths = sim.run_one(|os| make_files(os, "/corpus", count, file_bytes).unwrap());
        sim.flush_file_cache();
        let mut times = Vec::with_capacity(trials);
        // One unmeasured warm-up pass (the paper reports warm-cache
        // averages over 30 runs; with few trials the cold first run would
        // dominate the mean).
        for trial in 0..=trials {
            let paths = paths.clone();
            let params = params.clone();
            let needle = needle.clone();
            let opts = opts.clone();
            let t = sim.run_one(move |os| {
                let grep = Grep::new(os, opts);
                match mode {
                    MeasureMode::Unmodified => {
                        grep.run(&paths, &needle, &GrepMode::Unmodified)
                            .unwrap()
                            .elapsed
                    }
                    MeasureMode::GrayBox => {
                        grep.run(&paths, &needle, &GrepMode::GrayBox(params))
                            .unwrap()
                            .elapsed
                    }
                    MeasureMode::Gbp => {
                        // Unmodified grep fed by `gbp -mem`.
                        let t0 = os.now();
                        let ordered = Gbp::new(os, params)
                            .order_files(&paths, GbpMode::Mem)
                            .unwrap();
                        let r = grep.run(&ordered, &needle, &GrepMode::Unmodified).unwrap();
                        let _ = r;
                        os.now().since(t0)
                    }
                }
            });
            if trial > 0 {
                times.push(t);
            }
        }
        TrialStats::of(&times)
    };

    AppBars {
        app: "grep",
        unmodified: measure(MeasureMode::Unmodified),
        graybox: measure(MeasureMode::GrayBox),
        gbp: measure(MeasureMode::Gbp),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MeasureMode {
    Unmodified,
    GrayBox,
    Gbp,
}

/// The fastsort read phase: reads the input (sequentially or in FCCD plan
/// order) while copying records into a sort buffer that competes with the
/// file cache for memory — the effect that makes fastsort's benefit
/// smaller than grep's.
fn fastsort_read_phase<O: GrayBoxOs>(
    os: &O,
    input: &str,
    buffer_bytes: u64,
    plan: Option<&FccdParams>,
    via_gbp: bool,
) -> GrayDuration {
    let t0 = os.now();
    let page = os.page_size();
    let region = os.mem_alloc(buffer_bytes.max(page)).unwrap();
    let buf_pages = buffer_bytes.div_ceil(page);
    let chunk = 1u64 << 20;
    let mut touched = 0u64;

    let consume = |os: &O, bytes: u64, touched: &mut u64| {
        // Records are copied into the heap buffer as they arrive; the
        // buffer-page touches for each chunk go down as one batch.
        let pages = bytes.div_ceil(page);
        let plan: Vec<u64> = (0..pages).map(|i| (*touched + i) % buf_pages).collect();
        let samples = os.mem_probe_batch(region, &plan);
        assert!(samples.iter().all(|s| s.ok), "sort buffer touch failed");
        *touched += pages;
    };

    if via_gbp {
        let gbp = Gbp::new(os, plan.expect("gbp needs params").clone());
        gbp.stream_file_discard(input).unwrap();
        // The app still copies everything into its buffer.
        let fd = os.open(input).unwrap();
        let size = os.file_size(fd).unwrap();
        os.close(fd).unwrap();
        consume(os, size, &mut touched);
    } else {
        let fd = os.open(input).unwrap();
        let size = os.file_size(fd).unwrap();
        let extents: Vec<(u64, u64)> = match plan {
            None => vec![(0, size)],
            Some(params) => {
                let fccd = Fccd::new(os, params.clone().with_align(100));
                fccd.plan_file(fd, size)
                    .into_iter()
                    .map(|e| (e.offset, e.len))
                    .collect()
            }
        };
        for (offset, len) in extents {
            let mut off = offset;
            let end = offset + len;
            while off < end {
                let want = chunk.min(end - off);
                let n = os.read_discard(fd, off, want).unwrap();
                if n == 0 {
                    break;
                }
                consume(os, n, &mut touched);
                off += n;
            }
        }
        os.close(fd).unwrap();
    }
    os.mem_free(region).unwrap();
    os.now().since(t0)
}

fn run_fastsort(scale: Scale) -> AppBars {
    let cfg = scale.sim_config();
    let input_bytes = scale.bytes(1 << 30) / 100 * 100;
    let cache_bytes = cfg.usable_pages() * cfg.page_size;
    // The sort's in-memory run buffer (heap pressure on the cache).
    let buffer_bytes = cache_bytes / 3;
    let params = scale.fccd_params().with_align(100);
    let trials = scale.trials();

    // "To simulate a pipeline of creating records and then sorting them,
    // we refresh the file cache contents before each run": re-read the
    // tail of the input, as if it had just been created.
    let warm_tail = |sim: &mut Sim| {
        sim.flush_file_cache();
        let warm = (cache_bytes / 2).min(input_bytes);
        sim.run_one(move |os| {
            let fd = os.open("/sortin").unwrap();
            let size = os.file_size(fd).unwrap();
            os.read_discard(fd, size - warm, warm).unwrap();
            os.close(fd).unwrap();
        });
    };

    let measure = |mode: MeasureMode| -> TrialStats {
        let mut sim = Sim::new(cfg.clone());
        sim.run_one(|os| make_file(os, "/sortin", input_bytes).unwrap());
        let mut times = Vec::with_capacity(trials);
        for _ in 0..trials {
            warm_tail(&mut sim);
            let params = params.clone();
            let t = sim.run_one(move |os| match mode {
                MeasureMode::Unmodified => {
                    fastsort_read_phase(os, "/sortin", buffer_bytes, None, false)
                }
                MeasureMode::GrayBox => {
                    fastsort_read_phase(os, "/sortin", buffer_bytes, Some(&params), false)
                }
                MeasureMode::Gbp => {
                    fastsort_read_phase(os, "/sortin", buffer_bytes, Some(&params), true)
                }
            });
            times.push(t);
        }
        TrialStats::of(&times)
    };

    AppBars {
        app: "fastsort",
        unmodified: measure(MeasureMode::Unmodified),
        graybox: measure(MeasureMode::GrayBox),
        gbp: measure(MeasureMode::Gbp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_at_small_scale() {
        let fig = run(Scale::Small);
        let (grep_gb, grep_gbp) = fig.grep.normalized();
        let (sort_gb, sort_gbp) = fig.fastsort.normalized();

        // gb-grep is a substantial win (paper: ≈ 1/3).
        assert!(grep_gb < 0.6, "gb-grep normalized {grep_gb:.2}");
        // gbp keeps most of the benefit but costs a bit more than gb-grep.
        assert!(grep_gbp < 0.75, "gbp grep normalized {grep_gbp:.2}");
        assert!(
            grep_gbp > grep_gb * 0.95,
            "gbp should not beat the linked library: {grep_gbp:.2} vs {grep_gb:.2}"
        );

        // fastsort benefits, but less than grep (heap competes for memory).
        assert!(sort_gb < 0.95, "gb-fastsort normalized {sort_gb:.2}");
        assert!(
            sort_gb > grep_gb,
            "fastsort's benefit must be smaller than grep's: {sort_gb:.2} vs {grep_gb:.2}"
        );
        // The pipe copy makes gbp-fastsort a bit slower than gb-fastsort.
        assert!(sort_gbp >= sort_gb * 0.9);
    }
}
