//! Figure 7 — **Performance of the Sort with MAC**: four competing copies
//! of fastsort, each sorting its own record file from its own disk (the
//! fifth disk is swap-only), sweeping the statically configured pass size
//! against `gb-fastsort`, whose pass sizes come from MAC.
//!
//! Paper findings: performance is extremely sensitive to the static pass
//! size — slightly past the sweet spot (150 MB per process on their
//! 830 MB machine) the system pages and completion time explodes (a
//! 290 MB pass takes ~30 minutes); `gb-fastsort` never pages, picks an
//! average pass of 154 MB, and lands within ~1.5× of the best static
//! configuration, the overhead split between probing and waiting for
//! memory.

use gray_apps::fastsort::{FastSort, PassPolicy, SortConfig, SortReport};
use gray_apps::workload::make_file;
use gray_toolbox::ParamRepository;
use graybox::mac::MacParams;
use graybox::microbench::Microbench;
use simos::exec::Workload;
use simos::{DiskParams, Sim, SimConfig};

use crate::Scale;

/// One sweep point: a pass-size configuration across the four processes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Label ("50 MB", …, or "gb").
    pub label: String,
    /// Static pass size in bytes (None for gb-fastsort).
    pub pass_bytes: Option<u64>,
    /// Completion time of the slowest process, seconds.
    pub makespan: f64,
    /// Mean across processes of the read phase, seconds.
    pub read: f64,
    /// Mean sort phase, seconds.
    pub sort: f64,
    /// Mean write phase, seconds.
    pub write: f64,
    /// Mean MAC probe overhead, seconds (gb only).
    pub probe_overhead: f64,
    /// Mean MAC wait time, seconds (gb only).
    pub wait_overhead: f64,
    /// Mean pass size actually used, bytes.
    pub mean_pass: u64,
    /// Swap-outs observed during the run (paging indicator).
    pub swap_outs: u64,
}

/// The figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// All sweep points, static sizes first, gb last.
    pub points: Vec<SweepPoint>,
    /// Per-process data size, bytes.
    pub data_per_proc: u64,
    /// Usable memory, bytes.
    pub usable_memory: u64,
}

/// Number of competing sorts (the paper's four).
pub const PROCS: usize = 4;

/// The five-disk machine for this figure (the paper's: each process reads
/// and writes its own disk; the fifth is used only for paging).
fn machine(scale: Scale) -> SimConfig {
    match scale {
        Scale::Paper => SimConfig::paper(),
        Scale::Small | Scale::Tiny => {
            let mut cfg = scale.sim_config();
            cfg.disks = vec![DiskParams::small(); 5];
            cfg.swap_disk = 4;
            cfg.cpus = 2;
            cfg
        }
    }
}

/// Runs the whole sweep with fastsort's built-in touch-batch default.
pub fn run(scale: Scale) -> Fig7 {
    run_with_repository(scale, None)
}

/// Runs the sweep with each sort's touch-batch bound sourced from a
/// parameter repository (key `sched.sub_batch_pages`) instead of the
/// compile-time default — see [`calibrated_repository`]. `None` keeps the
/// default (64 pages), which is what the deterministic shape tests use.
pub fn run_with_repository(scale: Scale, repo: Option<&ParamRepository>) -> Fig7 {
    // Paper sweep: 50, 100, 150, 200 MB static passes (plus the 290 MB
    // catastrophe mentioned in the caption), then gb-fastsort.
    let static_passes: Vec<u64> = [50u64 << 20, 100 << 20, 150 << 20, 200 << 20]
        .iter()
        .map(|&b| scale.bytes(b))
        .collect();
    let data_per_proc = scale.bytes(477 << 20) / 100 * 100;
    let cfg = machine(scale);
    let usable_memory = cfg.usable_pages() * cfg.page_size;

    let touch_batch = touch_batch_from(repo);
    let mut points = Vec::new();
    for &pass in &static_passes {
        let label = format!("{} MB", to_paper_mb(scale, pass));
        points.push(run_config(
            scale,
            &label,
            data_per_proc,
            PassPolicy::Static(pass),
            Some(pass),
            touch_batch,
        ));
    }
    let mac = MacParams {
        initial_increment: scale.bytes(16 << 20).max(4096),
        max_increment: scale.bytes(128 << 20).max(8192),
        ..MacParams::default()
    };
    points.push(run_config(
        scale,
        "gb",
        data_per_proc,
        PassPolicy::GrayBox {
            mac,
            min: scale.bytes(100 << 20),
        },
        None,
        touch_batch,
    ));
    Fig7 {
        points,
        data_per_proc,
        usable_memory,
    }
}

/// The touch-batch bound a repository prescribes, if any.
fn touch_batch_from(repo: Option<&ParamRepository>) -> Option<u64> {
    let repo = repo?;
    // Round-trip through SortConfig so fig7 and standalone fastsort users
    // resolve the key identically.
    let resolved = SortConfig::new("/", "/", PassPolicy::Static(1))
        .with_repository(repo)
        .touch_batch;
    Some(resolved)
}

/// Builds a repository holding a measured `sched.sub_batch_pages` bound by
/// running the sub-batch microbenchmark inside a setup process on this
/// figure's machine. Host-timed (dispatch amortization is a host-side
/// cost), so the result varies run to run — which is why the shape tests
/// use [`run`] and only the regeneration binary calibrates.
pub fn calibrated_repository(scale: Scale) -> ParamRepository {
    let mut repo = ParamRepository::in_memory();
    let mut sim = Sim::new(machine(scale));
    let batch = sim.run_one(|os| Microbench::new(os).sub_batch_pages().unwrap());
    repo.set_raw(gray_toolbox::repository::keys::SCHED_SUB_BATCH_PAGES, batch);
    repo
}

/// A scheduler-dispatched FCCD phase for traced runs of this figure's
/// binary: classifies twelve candidate files spread over the machine's
/// four data disks through a concurrency-4 [`gray_sched::Scheduler`], so
/// the AIMD self-interference guard emits one `GuardTransition` trace
/// event per wave and the exported JSONL reconstructs the worker count
/// over time. Pure observability — the sweep itself never calls this;
/// the binary runs it only when tracing is enabled. Returns the number
/// of dispatched waves.
pub fn traced_guard_phase(scale: Scale) -> usize {
    use gray_sched::{FccdFleet, SchedConfig, Scheduler, SimExecutor};
    const FILES: usize = 12;
    let mut sim = Sim::new(machine(scale));
    let bytes = scale.bytes(32 << 20);
    let files: Vec<(String, u64)> = (0..FILES)
        .map(|i| {
            let disk = i % 4;
            let path = if disk == 0 {
                format!("/guard{i}")
            } else {
                format!("/d{disk}/guard{i}")
            };
            (path, bytes)
        })
        .collect();
    let setup = files.clone();
    sim.run_one(move |os| {
        for (path, b) in &setup {
            make_file(os, path, *b).unwrap();
        }
    });
    sim.flush_file_cache();
    let fleet = sim.run_one(|os| FccdFleet::with_fixed_seed(os, scale.fccd_params(), 1));
    let mut sched = Scheduler::new(SchedConfig {
        concurrency: PROCS,
        ..SchedConfig::default()
    });
    let mut exec = SimExecutor::new(&mut sim);
    let classified = fleet.classify_files(&mut sched, &mut exec, &files);
    assert_eq!(classified.cached.len() + classified.uncached.len(), FILES);
    sched.waves().len()
}

/// Converts a scaled pass size back to its paper-scale label.
fn to_paper_mb(scale: Scale, pass: u64) -> u64 {
    match scale {
        Scale::Paper => pass >> 20,
        Scale::Small => (pass * 14) >> 20,
        Scale::Tiny => (pass * 45) >> 20,
    }
}

fn run_config(
    scale: Scale,
    label: &str,
    data_per_proc: u64,
    policy: PassPolicy,
    pass_bytes: Option<u64>,
    touch_batch: Option<u64>,
) -> SweepPoint {
    let cfg = machine(scale);
    let mut sim = Sim::new(cfg);

    // Create each process's input on its own disk (disk 0 mounts "/").
    let inputs: Vec<String> = (0..PROCS)
        .map(|i| {
            if i == 0 {
                "/sortin".to_string()
            } else {
                format!("/d{i}/sortin")
            }
        })
        .collect();
    for input in &inputs {
        let input = input.clone();
        sim.run_one(move |os| make_file(os, &input, data_per_proc).unwrap());
    }
    sim.flush_file_cache();

    // Launch the four competing sorts.
    let workloads: Vec<(String, Workload<'_, SortReport>)> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let input = input.clone();
            let output = if i == 0 {
                "/sorted".to_string()
            } else {
                format!("/d{i}/sorted")
            };
            let policy = policy.clone();
            let name = format!("fastsort{i}");
            let wl: Workload<'_, SortReport> = Box::new(move |os: &simos::SimProc| {
                let mut cfg = SortConfig::new(&input, &output, policy);
                if let Some(batch) = touch_batch {
                    cfg.touch_batch = batch;
                }
                FastSort::new(os, cfg).run_modelled().unwrap()
            });
            (name, wl)
        })
        .collect();
    let reports = sim.run(workloads);
    let swap_outs = sim.oracle().stats().swap_outs;

    let n = reports.len() as f64;
    let mean = |f: &dyn Fn(&SortReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    SweepPoint {
        label: label.to_string(),
        pass_bytes,
        makespan: reports
            .iter()
            .map(|r| r.total.as_secs_f64())
            .fold(0.0, f64::max),
        read: mean(&|r| r.read_time.as_secs_f64()),
        sort: mean(&|r| r.sort_time.as_secs_f64()),
        write: mean(&|r| r.write_time.as_secs_f64()),
        probe_overhead: mean(&|r| r.probe_time.as_secs_f64()),
        wait_overhead: mean(&|r| r.wait_time.as_secs_f64()),
        mean_pass: (mean(&|r| r.mean_pass() as f64)) as u64,
        swap_outs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_at_small_scale() {
        let fig = run(Scale::Small);
        let statics: Vec<&SweepPoint> = fig
            .points
            .iter()
            .filter(|p| p.pass_bytes.is_some())
            .collect();
        let gb = fig.points.last().expect("gb point");
        assert!(gb.pass_bytes.is_none());

        // The largest static pass pages; the sweet spot does not.
        let worst_static = statics.last().unwrap();
        let best_static = statics
            .iter()
            .min_by(|a, b| a.makespan.partial_cmp(&b.makespan).unwrap())
            .unwrap();
        assert!(
            worst_static.swap_outs > 0,
            "the oversized pass must page: {worst_static:?}"
        );
        assert!(
            worst_static.makespan > best_static.makespan * 1.5,
            "paging must hurt: {} vs {}",
            worst_static.makespan,
            best_static.makespan
        );

        // gb-fastsort never *thrashes*: MAC's probing has bounded
        // collateral (billed as probe overhead), far below the paging of
        // the oversized static configuration.
        assert!(
            gb.swap_outs < worst_static.swap_outs / 10,
            "gb paging must be collateral-only: gb {} vs worst static {}",
            gb.swap_outs,
            worst_static.swap_outs
        );
        // …its average pass lands in the non-paging sweet band. The
        // paper's comparison point is the sweet spot — the *largest*
        // static pass that does not page — not the static point with the
        // minimum makespan: the non-paging points finish within a few
        // percent of each other, so which of them "wins" is clock-jitter
        // noise, while the sweet spot is stable.
        let sweet = statics
            .iter()
            .filter(|p| p.swap_outs == 0)
            .max_by_key(|p| p.pass_bytes.unwrap())
            .expect("at least one static pass must avoid paging");
        let ratio = gb.mean_pass as f64 / sweet.mean_pass as f64;
        assert!(
            (0.4..=2.0).contains(&ratio),
            "gb mean pass {} vs sweet-spot static mean pass {} (pass {})",
            gb.mean_pass,
            sweet.mean_pass,
            sweet.pass_bytes.unwrap()
        );
        // …and it lands well below the paging catastrophe, paying only a
        // bounded overhead over the best static configuration (the paper
        // measured 1.54x).
        assert!(gb.makespan < worst_static.makespan);
        assert!(
            gb.makespan < best_static.makespan * 2.5,
            "gb {} vs best {}",
            gb.makespan,
            best_static.makespan
        );
        // The overhead is attributable: probing plus waiting.
        assert!(gb.probe_overhead > 0.0);
    }
}
