//! Figure 1 — **Probe Correlation**: how well does the presence of one
//! random page within a prediction unit predict the cached fraction of the
//! whole unit?
//!
//! The paper's procedure: flush the file cache; run a program that reads a
//! file of roughly twice the cache size in `access_unit`-sized sequential
//! chunks at random offsets; then (via their modified kernel) obtain the
//! per-page presence bitmap and correlate, across prediction units, the
//! presence of a random page with the unit's cached fraction. Three access
//! patterns (1 MB ≈ random, 10 MB, 100 MB ≈ sequential at paper scale)
//! sweep the prediction unit along the x-axis.
//!
//! The expected shape: correlation is high while the prediction unit is at
//! or below the access unit, and falls off noticeably beyond it.

use gray_apps::workload::make_file;
use gray_toolbox::correlation;
use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use gray_toolbox::trace;
use graybox::os::GrayBoxOs;
use simos::Sim;

use crate::Scale;

/// One measured cell: mean and stddev of the correlation across trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Mean Pearson correlation.
    pub mean: f64,
    /// Sample standard deviation across trials.
    pub stddev: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Access-unit sizes (bytes), one series each.
    pub access_units: Vec<u64>,
    /// Prediction-unit sizes (bytes), the x-axis.
    pub prediction_units: Vec<u64>,
    /// `cells[series][x]`.
    pub cells: Vec<Vec<Cell>>,
    /// File size used (bytes).
    pub file_size: u64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig1 {
    let cfg = scale.sim_config();
    let cache_bytes = cfg.usable_pages() * cfg.page_size;
    let file_size = cache_bytes * 2;
    let page = cfg.page_size;

    // Paper-scale series: 1 MB, 10 MB, 100 MB access units.
    let access_units: Vec<u64> = [1u64 << 20, 10 << 20, 100 << 20]
        .iter()
        .map(|&b| scale.bytes(b).next_multiple_of(page))
        .collect();
    // Paper-scale x-axis: 1..50 MB prediction units.
    let prediction_units: Vec<u64> = [1u64 << 20, 2 << 20, 5 << 20, 10 << 20, 20 << 20, 50 << 20]
        .iter()
        .map(|&b| scale.bytes(b).next_multiple_of(page))
        .collect();
    let trials = scale.trials();

    let mut sim = Sim::new(cfg);
    sim.run_one(|os| make_file(os, "/fig1", file_size).unwrap());

    let mut cells = vec![Vec::new(); access_units.len()];
    let mut rng = StdRng::seed_from_u64(0xF161);
    for (si, &au) in access_units.iter().enumerate() {
        for &pu in &prediction_units {
            let mut corrs = Vec::with_capacity(trials);
            for trial in 0..trials {
                sim.flush_file_cache();
                let seed = 0x9000 + (si as u64) * 131 + pu + trial as u64;
                run_access_pattern(&mut sim, "/fig1", file_size, au, seed);
                let bitmap = sim.oracle().file_presence("/fig1").unwrap();
                corrs.push(probe_correlation(&bitmap, pu / page, &mut rng));
            }
            let s = gray_toolbox::Summary::new(&corrs);
            cells[si].push(Cell {
                mean: s.mean(),
                stddev: s.stddev(),
            });
        }
    }
    Fig1 {
        access_units,
        prediction_units,
        cells,
        file_size,
    }
}

/// Reads `access_unit`-sized sequential chunks at random offsets until one
/// file's worth of data has been read (the paper's test program).
fn run_access_pattern(sim: &mut Sim, path: &str, file_size: u64, access_unit: u64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let reads = (file_size / access_unit).max(1);
    sim.run_one(|os| {
        let fd = os.open(path).unwrap();
        let page = os.page_size();
        for _ in 0..reads {
            let max_start = (file_size - access_unit) / page;
            let start = rng.random_range(0..=max_start) * page;
            os.read_discard(fd, start, access_unit).unwrap();
        }
        os.close(fd).unwrap();
    });
}

/// The Figure 1 statistic: across prediction units, correlate "a random
/// page of the unit is present" (0/1) with "fraction of the unit present".
///
/// Each unit's probe outcome is the figure's elementary inference, so it
/// is emitted as a `Classified { Present | Absent }` trace event — the
/// figure-level counterpart of FCCD's cached/uncached verdicts.
fn probe_correlation(bitmap: &[bool], unit_pages: u64, rng: &mut StdRng) -> f64 {
    let unit_pages = unit_pages.max(1) as usize;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, unit) in bitmap.chunks(unit_pages).enumerate() {
        let frac = unit.iter().filter(|&&b| b).count() as f64 / unit.len() as f64;
        let probe = unit[rng.random_range(0..unit.len())];
        trace::emit_with(|| trace::TraceEvent::Classified {
            unit: format!("pu:{i}"),
            verdict: if probe {
                trace::Verdict::Present
            } else {
                trace::Verdict::Absent
            },
        });
        xs.push(if probe { 1.0 } else { 0.0 });
        ys.push(frac);
    }
    correlation(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_correlation_of_chunked_bitmap_is_high() {
        // Perfectly chunky residency: units fully in or fully out.
        let mut bitmap = vec![true; 64];
        bitmap.extend(vec![false; 64]);
        bitmap.extend(vec![true; 64]);
        bitmap.extend(vec![false; 64]);
        let mut rng = StdRng::seed_from_u64(1);
        let c = probe_correlation(&bitmap, 16, &mut rng);
        assert!(c > 0.99, "chunky bitmap must correlate: {c}");
    }

    #[test]
    fn probe_correlation_of_scattered_bitmap_is_low() {
        // Alternating pages: a probe says nothing about unit fractions
        // (fractions are all 0.5 — zero variance in y).
        let bitmap: Vec<bool> = (0..256).map(|i| i % 2 == 0).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let c = probe_correlation(&bitmap, 16, &mut rng);
        assert!(c.abs() < 0.3, "scattered bitmap must not correlate: {c}");
    }

    #[test]
    fn figure_shape_holds_at_small_scale() {
        let fig = run(Scale::Small);
        // Smallest prediction unit, every pattern: strong correlation.
        for (si, series) in fig.cells.iter().enumerate() {
            assert!(
                series[0].mean > 0.6,
                "series {si} at smallest prediction unit: {:?}",
                series[0]
            );
        }
        // For the smallest (random-ish) access pattern, a prediction unit
        // far above the access unit must correlate worse than the
        // smallest prediction unit.
        let first = &fig.cells[0];
        let last = first.last().unwrap();
        assert!(
            last.mean < first[0].mean,
            "correlation must fall off: {first:?}"
        );
    }
}
