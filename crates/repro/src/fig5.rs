//! Figure 5 — **File Ordering Matters**: total time to read 200 small
//! (8 KB) files split evenly across two directories, in three access
//! orders — random, sorted by directory, sorted by i-number — on each
//! platform, with a cold cache.
//!
//! Paper findings: directory sorting beats random by 10–25%; i-number
//! sorting is dramatic — about 6× on Linux and NetBSD, better than 2× on
//! Solaris.

use gray_apps::workload::{read_files_in_order, shuffled};
use gray_toolbox::GrayDuration;
use graybox::fldc::Fldc;
use graybox::os::GrayBoxOs;
use simos::{Platform, Sim};

use crate::{Scale, TrialStats};

/// One platform's three bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// The platform.
    pub platform: Platform,
    /// Random order.
    pub random: TrialStats,
    /// Grouped by directory.
    pub by_directory: TrialStats,
    /// Sorted by i-number.
    pub by_inumber: TrialStats,
}

/// The figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// One row per platform.
    pub rows: Vec<Fig5Row>,
}

/// Number of files and their size (the paper's exact workload — small
/// enough to keep unscaled).
pub const FILES: usize = 200;
/// Size of each small file in bytes.
pub const FILE_BYTES: u64 = 8 << 10;

/// Runs all three orders on all three platforms.
pub fn run(scale: Scale) -> Fig5 {
    let rows = [
        Platform::LinuxLike,
        Platform::NetBsdLike,
        Platform::SolarisLike,
    ]
    .into_iter()
    .map(|p| run_platform(scale, p))
    .collect();
    Fig5 { rows }
}

fn run_platform(scale: Scale, platform: Platform) -> Fig5Row {
    let cfg = scale.sim_config().with_platform(platform);
    let trials = scale.trials();
    let mut sim = Sim::new(cfg);

    // Create the two directories and interleave file creation across them
    // ("200 8-KB files, split equally across two directories").
    let paths: Vec<String> = sim.run_one(|os| {
        use graybox::os::GrayBoxOsExt;
        os.mkdir("/dir_a").unwrap();
        os.mkdir("/dir_b").unwrap();
        let mut paths = Vec::with_capacity(FILES);
        for i in 0..FILES {
            let dir = if i % 2 == 0 { "/dir_a" } else { "/dir_b" };
            let path = os.join(dir, &format!("f{i:03}"));
            let fd = os.create(&path).unwrap();
            os.write_fill(fd, 0, FILE_BYTES).unwrap();
            os.close(fd).unwrap();
            paths.push(path);
        }
        os.sync().unwrap();
        paths
    });

    let mut measure = |order_for_trial: &dyn Fn(&mut Sim, usize) -> Vec<String>| -> TrialStats {
        let mut times: Vec<GrayDuration> = Vec::with_capacity(trials);
        for trial in 0..trials {
            let order = order_for_trial(&mut sim, trial);
            sim.flush_file_cache();
            times.push(sim.run_one(move |os| read_files_in_order(os, &order).unwrap()));
        }
        TrialStats::of(&times)
    };

    let random = {
        let paths = paths.clone();
        measure(&move |_sim, trial| shuffled(&paths, 0xF5 + trial as u64))
    };
    let by_directory = {
        let paths = paths.clone();
        measure(&move |sim, trial| {
            let scrambled = shuffled(&paths, 0xD1 + trial as u64);
            sim.run_one(move |os| Fldc::new(os).order_by_directory(&scrambled))
        })
    };
    let by_inumber = {
        let paths = paths.clone();
        measure(&move |sim, trial| {
            let scrambled = shuffled(&paths, 0x1A + trial as u64);
            sim.run_one(move |os| {
                let (ranks, _) = Fldc::new(os).order_by_inumber(&scrambled);
                ranks.into_iter().map(|r| r.path).collect()
            })
        })
    };

    Fig5Row {
        platform,
        random,
        by_directory,
        by_inumber,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_at_small_scale() {
        let fig = run(Scale::Small);
        for row in &fig.rows {
            // Directory grouping beats random.
            assert!(
                row.by_directory.mean < row.random.mean,
                "{:?}: dir {} vs random {}",
                row.platform,
                row.by_directory.mean,
                row.random.mean
            );
            // I-number order is a large win (paper: ~6x on Linux/NetBSD).
            assert!(
                row.by_inumber.mean < row.random.mean / 2.5,
                "{:?}: inumber {} vs random {}",
                row.platform,
                row.by_inumber.mean,
                row.random.mean
            );
            // And beats directory grouping too.
            assert!(row.by_inumber.mean < row.by_directory.mean);
        }
    }
}
