//! Figure 6 — **Aging and Refresh**: reading 100 small files in one
//! directory as the file system ages (each epoch deletes five random files
//! and creates five new ones), comparing random order against i-number
//! order, with an explicit directory refresh at epoch 31.
//!
//! Paper findings: random ordering is uniformly poor; i-number ordering is
//! excellent on a fresh directory, degrades with age (worse than 3× off
//! fresh by epoch 30, though still better than random), and snaps back to
//! the original level after the refresh.

use gray_apps::workload::{age_epoch, make_files, read_files_in_order, shuffled};
use gray_toolbox::rng::SeedableRng;
use gray_toolbox::rng::StdRng;
use graybox::fldc::{Fldc, RefreshOrder};
use graybox::os::GrayBoxOs;
use simos::Sim;

use crate::Scale;

/// One epoch's measurements, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochPoint {
    /// Epoch number (0 = fresh).
    pub epoch: u32,
    /// Random-order read time.
    pub random: f64,
    /// I-number-order read time.
    pub inumber: f64,
}

/// The figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Per-epoch measurements.
    pub points: Vec<EpochPoint>,
    /// The epoch at whose start the directory was refreshed.
    pub refresh_epoch: u32,
}

/// Number of files in the aged directory (the paper's 100).
pub const FILES: usize = 100;
/// Files deleted + created per epoch (the paper's 5).
pub const CHURN: usize = 5;
/// Size of each file.
pub const FILE_BYTES: u64 = 8 << 10;

/// Runs the aging experiment over `epochs` epochs, refreshing at
/// `refresh_epoch` (the paper: 40 epochs, refresh at 31).
pub fn run_with(scale: Scale, epochs: u32, refresh_epoch: u32) -> Fig6 {
    let cfg = scale.sim_config();
    let mut sim = Sim::new(cfg);
    let mut rng = StdRng::seed_from_u64(0xF166);

    sim.run_one(|os| make_files(os, "/aged", FILES, FILE_BYTES).unwrap());
    let mut points = Vec::with_capacity(epochs as usize + 1);
    let mut current_paths: Vec<String> = sim.run_one(|os| {
        use graybox::os::GrayBoxOsExt;
        os.list_dir("/aged")
            .unwrap()
            .into_iter()
            .map(|n| os.join("/aged", &n))
            .collect()
    });

    for epoch in 0..=epochs {
        if epoch > 0 {
            let mut epoch_rng = StdRng::seed_from_u64(rng_next(&mut rng));
            current_paths = sim.run_one(|os| {
                age_epoch(os, "/aged", CHURN, FILE_BYTES, epoch as u64, &mut epoch_rng).unwrap()
            });
            if epoch == refresh_epoch {
                // The paper's control step: move the directory back to a
                // known state (the epoch-31 point is measured post-refresh).
                sim.run_one(|os| {
                    Fldc::new(os)
                        .refresh_directory("/aged", RefreshOrder::SmallestFirst)
                        .unwrap()
                });
                current_paths = sim.run_one(|os| {
                    use graybox::os::GrayBoxOsExt;
                    os.list_dir("/aged")
                        .unwrap()
                        .into_iter()
                        .map(|n| os.join("/aged", &n))
                        .collect()
                });
            }
        }

        // Measure random order.
        sim.flush_file_cache();
        let order = shuffled(&current_paths, 0xAAA + epoch as u64);
        let t_random = sim.run_one(move |os| read_files_in_order(os, &order).unwrap());

        // Measure i-number order.
        sim.flush_file_cache();
        let scrambled = shuffled(&current_paths, 0xBBB + epoch as u64);
        let t_inumber = sim.run_one(move |os| {
            let (ranks, _) = Fldc::new(os).order_by_inumber(&scrambled);
            let order: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
            read_files_in_order(os, &order).unwrap()
        });

        points.push(EpochPoint {
            epoch,
            random: t_random.as_secs_f64(),
            inumber: t_inumber.as_secs_f64(),
        });
    }
    Fig6 {
        points,
        refresh_epoch,
    }
}

/// Runs the paper's exact schedule: epochs 0..=40, refresh at 31.
pub fn run(scale: Scale) -> Fig6 {
    run_with(scale, 40, 31)
}

fn rng_next(rng: &mut StdRng) -> u64 {
    use gray_toolbox::rng::RngExt;
    rng.random_range(0..u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_holds_at_small_scale() {
        // A shorter schedule for the test: 14 epochs, refresh at 11.
        let fig = run_with(Scale::Small, 14, 11);
        let fresh = fig.points[0];
        let aged = &fig.points[10];
        let refreshed = &fig.points[11];

        // Fresh: i-number order crushes random.
        assert!(
            fresh.inumber < fresh.random / 2.0,
            "fresh: inumber {} vs random {}",
            fresh.inumber,
            fresh.random
        );
        // Aging degrades i-number order...
        assert!(
            aged.inumber > fresh.inumber * 1.3,
            "aged: {} vs fresh {}",
            aged.inumber,
            fresh.inumber
        );
        // ...but it stays better than random.
        assert!(aged.inumber < aged.random);
        // The refresh restores close-to-fresh performance.
        assert!(
            refreshed.inumber < aged.inumber,
            "refresh must help: {} vs {}",
            refreshed.inumber,
            aged.inumber
        );
        assert!(
            refreshed.inumber < fresh.inumber * 1.6,
            "refresh must restore near-fresh: {} vs fresh {}",
            refreshed.inumber,
            fresh.inumber
        );
        // Random stays roughly flat (no trend worth asserting beyond a
        // sanity band).
        let r0 = fresh.random;
        for p in &fig.points {
            assert!(p.random > r0 * 0.4 && p.random < r0 * 2.5);
        }
    }
}
