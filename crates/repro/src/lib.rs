//! Reproduction harness for every table and figure in the paper's
//! evaluation.
//!
//! Each experiment is a library function (`fig1::run`, `fig2::run`, …)
//! returning structured rows, so the same code backs the printable
//! binaries (`cargo run -p repro --bin fig2`), the integration tests that
//! assert the paper's *shape claims* (who wins, by roughly what factor,
//! where crossovers fall), and the Criterion smoke benches.
//!
//! Experiments run at two scales:
//!
//! - [`Scale::Small`] (default): a 64 MB-RAM simulated machine; every
//!   workload is scaled by the same factor as the memory, so every ratio
//!   in the paper is preserved while the full suite runs in minutes.
//! - [`Scale::Paper`] (`--full`): the 896 MB / five-disk testbed at the
//!   paper's workload sizes.
//!
//! Absolute numbers are not expected to match the paper (this substrate is
//! a simulator, not the authors' hardware); EXPERIMENTS.md records the
//! side-by-side comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod sleds;
pub mod tables;

use gray_toolbox::GrayDuration;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Benchmark-sized machine and workloads (seconds per figure; used by
    /// the Criterion smoke benches — too small for publishable shapes).
    Tiny,
    /// Scaled-down machine and workloads (default; minutes for the suite).
    Small,
    /// The paper's testbed and workload sizes (`--full`; much slower).
    Paper,
}

impl Scale {
    /// Parses `--full` from a binary's argument list.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Paper
        } else {
            Scale::Small
        }
    }

    /// The simulator configuration for this scale (Linux personality).
    pub fn sim_config(self) -> simos::SimConfig {
        match self {
            Scale::Tiny => {
                let mut cfg = simos::SimConfig::small();
                cfg.mem_bytes = 24 << 20;
                cfg.kernel_reserve_bytes = 4 << 20;
                cfg
            }
            Scale::Small => simos::SimConfig::small(),
            Scale::Paper => simos::SimConfig::paper(),
        }
    }

    /// Number of repetitions per measured point (the paper uses 30).
    pub fn trials(self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 5,
            Scale::Paper => 30,
        }
    }

    /// A convenient workload scaling factor: bytes at paper scale are
    /// multiplied by this to get bytes at this scale (derived from the
    /// memory ratio, e.g. 64 MB / 896 MB = 1/14).
    pub fn bytes(self, paper_bytes: u64) -> u64 {
        match self {
            Scale::Paper => paper_bytes,
            Scale::Small => (paper_bytes / 14).max(4096),
            Scale::Tiny => (paper_bytes / 45).max(4096),
        }
    }

    /// FCCD parameters proportioned to this scale (paper: 20 MB access
    /// units, 5 MB prediction units).
    pub fn fccd_params(self) -> graybox::fccd::FccdParams {
        graybox::fccd::FccdParams {
            access_unit: self.bytes(20 << 20).next_multiple_of(4096),
            prediction_unit: self.bytes(5 << 20).next_multiple_of(4096),
            ..graybox::fccd::FccdParams::default()
        }
    }
}

/// Where `GRAY_PROFILE` asked the folded profile to be written, if set.
static PROFILE_SINK: std::sync::OnceLock<String> = std::sync::OnceLock::new();

/// Enables trace export when a figure binary is asked for it: an explicit
/// `--trace <path>` argument wins; otherwise the `GRAY_TRACE` environment
/// variable is honored. Returns the sink path when tracing is on, so the
/// binary can report it via [`finish_tracing`].
///
/// Also honors `GRAY_PROFILE=<path>`: the virtual-time profiler is armed
/// for the whole run and [`finish_tracing`] writes the folded-stack
/// attribution (one `path ns` line per leaf, flamegraph-ready) to the
/// path.
pub fn init_tracing() -> Option<String> {
    if let Some(path) = gray_toolbox::profile::init_from_env() {
        let _ = PROFILE_SINK.set(path);
    }
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(pos + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "gray-trace.jsonl".to_string());
        gray_toolbox::trace::enable_jsonl(&path)
            .unwrap_or_else(|e| panic!("cannot open trace sink {path}: {e}"));
        return Some(path);
    }
    gray_toolbox::trace::init_from_env()
}

/// Flushes and closes the trace sink opened by [`init_tracing`] and tells
/// the user where the events went.
pub fn finish_tracing(sink: Option<String>) {
    gray_toolbox::trace::shutdown();
    if let Some(path) = sink {
        eprintln!("trace: events written to {path}");
    }
    if let Some(path) = PROFILE_SINK.get() {
        let snap = gray_toolbox::profile::snapshot();
        match std::fs::write(path, snap.folded()) {
            Ok(()) => eprintln!(
                "profile: {} virtual ns attributed; folded stacks written to {path}",
                snap.total_ns
            ),
            Err(e) => eprintln!("profile: cannot write {path}: {e}"),
        }
    }
}

/// Statistics of repeated trials, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Mean of the trials.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
}

impl TrialStats {
    /// Summarizes durations.
    pub fn of(times: &[GrayDuration]) -> TrialStats {
        let secs: Vec<f64> = times.iter().map(|t| t.as_secs_f64()).collect();
        let s = gray_toolbox::Summary::new(&secs);
        TrialStats {
            mean: s.mean(),
            stddev: s.stddev(),
        }
    }
}

impl std::fmt::Display for TrialStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:8.3}s ±{:6.3}", self.mean, self.stddev)
    }
}

/// Prints an aligned table: `header` then one row per entry.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
            .collect::<String>()
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints the paper-reported reference for an experiment.
pub fn print_paper_note(note: &str) {
    println!("--- paper reports: {note}");
}
