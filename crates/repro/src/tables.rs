//! Tables 1 and 2: the gray-box technique taxonomies, with measured
//! evidence behind every Table 1 row.

use graybox::technique::{render_table, TechniqueInventory};

/// Table 1 inventories (TCP, implicit coscheduling, MS Manners).
pub fn table1() -> Vec<TechniqueInventory> {
    priorart::table1_inventories()
}

/// Table 2 inventories (FCCD, FLDC, MAC).
pub fn table2() -> Vec<TechniqueInventory> {
    vec![
        graybox::fccd::techniques(),
        graybox::fldc::techniques(),
        graybox::mac::techniques(),
    ]
}

/// Renders Table 1 with a measured-evidence appendix from the mini-sims.
pub fn render_table1() -> String {
    let mut out = render_table(
        "Table 1: Gray-Box Techniques used in Existing Systems",
        &table1(),
    );
    out.push_str("\nMeasured evidence (this reproduction):\n");

    let wired = priorart::tcp::run(&priorart::tcp::TcpConfig::default());
    let wireless = priorart::tcp::run(&priorart::tcp::TcpConfig {
        wireless_loss: 0.03,
        ..priorart::tcp::TcpConfig::default()
    });
    out.push_str(&format!(
        "  TCP: wired util {:.0}% fairness {:.2} inference-accuracy {:.0}%; \
         wireless(3% loss) util {:.0}% accuracy {:.0}% (gray-box rule breaks)\n",
        wired.utilization * 100.0,
        wired.fairness,
        wired.inference_accuracy * 100.0,
        wireless.utilization * 100.0,
        wireless.inference_accuracy * 100.0,
    ));

    let cfg = priorart::cosched::CoschedConfig::default();
    let block = priorart::cosched::run(&cfg, priorart::cosched::WaitPolicy::BlockImmediately);
    let spin = priorart::cosched::run(
        &cfg,
        priorart::cosched::WaitPolicy::SpinBlock {
            spin: priorart::cosched::baseline_spin(&cfg),
        },
    );
    out.push_str(&format!(
        "  Implicit cosched: spin-block {:.0} ticks vs block {:.0} ticks \
         ({:.1}x), spin hit-rate {:.0}%\n",
        spin.makespan as f64,
        block.makespan as f64,
        block.makespan as f64 / spin.makespan as f64,
        spin.spin_hits * 100.0,
    ));

    let manners = priorart::manners::run(&priorart::manners::MannersConfig::default());
    out.push_str(&format!(
        "  MS Manners: detection latency {:.0} ticks, interference {:.0}% of \
         busy time, idle utilization {:.0}%\n",
        manners.detection_latency,
        manners.interference * 100.0,
        manners.idle_utilization * 100.0,
    ));

    // Bonus: the paper's Section 2.2 AFS control example, quantified.
    let afs_cfg = priorart::afs::AfsConfig::default();
    let demand = priorart::afs::run_demand(&afs_cfg);
    let prefetch = priorart::afs::run_prefetch(&afs_cfg);
    out.push_str(&format!(
        "  AFS prefetch (\u{00a7}2.2): demand {:.1}s vs 1-byte-probe prefetch {:.1}s \
         ({:.0}% of fetch stall hidden)\n",
        demand.elapsed,
        prefetch.elapsed,
        (1.0 - prefetch.stall / demand.stall) * 100.0,
    ));
    out
}

/// Renders Table 2.
pub fn render_table2() -> String {
    render_table(
        "Table 2: Gray-Box Techniques used in Case Studies",
        &table2(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox::technique::Technique;

    #[test]
    fn table1_has_three_systems_in_paper_order() {
        let t = table1();
        let names: Vec<&str> = t.iter().map(|i| i.system).collect();
        assert_eq!(names, vec!["TCP", "Implicit cosched", "MS Manners"]);
    }

    #[test]
    fn table2_matches_paper_claims() {
        let t = table2();
        let fccd = &t[0];
        let fldc = &t[1];
        let mac = &t[2];
        // Probing is the case studies' addition over Table 1 systems.
        assert!(fccd.uses(Technique::InsertProbes));
        assert!(fldc.uses(Technique::InsertProbes));
        assert!(mac.uses(Technique::InsertProbes));
        // FLDC's control is the known-state refresh.
        assert!(fldc.uses(Technique::KnownState));
    }

    #[test]
    fn renders_are_nonempty_and_mention_measured_evidence() {
        let t1 = render_table1();
        assert!(t1.contains("inference-accuracy"));
        assert!(t1.contains("spin hit-rate"));
        assert!(t1.contains("detection latency"));
        let t2 = render_table2();
        assert!(t2.contains("FCCD") && t2.contains("FLDC") && t2.contains("MAC"));
    }
}
