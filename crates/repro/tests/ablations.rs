//! Accuracy ablations for the design choices DESIGN.md calls out. These
//! are regression tests for behaviors the paper motivates qualitatively.

use gray_apps::workload::make_file;
use graybox::fccd::{Fccd, FccdParams};
use graybox::fldc::{Fldc, RefreshOrder};
use graybox::mac::{Mac, MacParams};
use graybox::os::GrayBoxOs;
use simos::{Sim, SimConfig};

/// Paper §4.1.2: "the method for choosing a probe point within a
/// prediction unit is important. One approach is to select bytes at
/// predetermined offsets; however, if a process terminates after the probe
/// phase but before the access phase, or if two processes probe the
/// file-cache for the same file at nearly the same time, then the second
/// set of probes will return bad information, indicating that all pages
/// are likely in the file cache."
///
/// We reproduce that exactly: over a *cold* file, process A probes and
/// terminates; process B then probes. With fixed offsets B hits only A's
/// footprints and declares the cold file cached; with random offsets B
/// stays accurate.
#[test]
fn ablation_fixed_probe_offsets_are_self_confounding() {
    let cold_units_detected = |fixed: bool| -> usize {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let size = 32u64 << 20;
        sim.run_one(|os| make_file(os, "/abl", size).unwrap());
        sim.flush_file_cache();
        let unit = 2u64 << 20;
        let probe = move |os: &simos::SimProc| -> Vec<bool> {
            let params = FccdParams {
                access_unit: unit,
                prediction_unit: unit,
                seed: 0x5eed,
                ..FccdParams::default()
            };
            let fccd = if fixed {
                Fccd::with_fixed_seed(os, params)
            } else {
                Fccd::new(os, params)
            };
            let fd = os.open("/abl").unwrap();
            let report = fccd.probe_file(fd, size);
            os.close(fd).unwrap();
            report
                .units
                .iter()
                .map(|u| u.probe_time > gray_toolbox::GrayDuration::from_millis(1))
                .collect()
        };
        // Process A probes and terminates without accessing anything.
        sim.run_one(move |os| {
            probe(os);
        });
        // Process B probes the still-cold file.
        let cold_seen: Vec<bool> = sim.run_one(move |os| probe(os));
        cold_seen.iter().filter(|&&cold| cold).count()
    };

    let units = 16;
    let with_random = cold_units_detected(false);
    let with_fixed = cold_units_detected(true);
    assert!(
        with_random >= units - 1,
        "random offsets must see the cold file: {with_random}/{units} units cold"
    );
    assert!(
        with_fixed <= units / 4,
        "fixed offsets must be fooled by the previous probes: {with_fixed}/{units} units \
         reported cold (paper: 'all pages are likely in the file cache')"
    );
}

/// Figure 1's premise as a direct ablation: prediction units larger than
/// the access unit predict worse than matched ones.
#[test]
fn ablation_prediction_unit_must_not_exceed_access_unit() {
    use repro::Scale;
    let fig = repro::fig1::run(Scale::Small);
    // Series 0 is the smallest access unit. Compare matched vs oversized
    // prediction units.
    let series = &fig.cells[0];
    let matched = series[0].mean;
    let oversized = series.last().unwrap().mean;
    assert!(
        matched - oversized > 0.15,
        "oversized prediction units must lose signal: matched {matched:.2} vs oversized {oversized:.2}"
    );
}

/// MAC's doubling increment probes far fewer pages than a fixed small
/// increment for an equivalent estimate (paper §4.3.2's compromise).
#[test]
fn ablation_mac_doubling_probes_fewer_pages_than_fixed() {
    let run_policy = |max_increment: u64| -> (u64, u64) {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(move |os| {
            let mac = Mac::new(
                os,
                MacParams {
                    initial_increment: 1 << 20,
                    max_increment,
                    ..MacParams::default()
                },
            );
            let est = mac.available_estimate(128 << 20).unwrap();
            (est, mac.take_stats().pages_probed)
        })
    };
    let (est_fixed, probed_fixed) = run_policy(1 << 20); // Never grows.
    let (est_doubling, probed_doubling) = run_policy(32 << 20);
    // Same ballpark answer...
    let ratio = est_doubling as f64 / est_fixed.max(1) as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "estimates should agree: fixed {est_fixed} vs doubling {est_doubling}"
    );
    // ...for much less probing.
    assert!(
        probed_doubling * 2 < probed_fixed,
        "doubling must probe fewer pages: {probed_doubling} vs {probed_fixed}"
    );
}

/// FLDC refresh ordering: writing small files first keeps the i-number /
/// layout correlation tight; putting the large file first pushes every
/// small file's blocks behind it while the i-numbers interleave by size
/// ordering on the *next* refresh.
#[test]
fn ablation_refresh_small_files_first_beats_directory_order() {
    use gray_toolbox::rng::SeedableRng;
    use gray_toolbox::rng::StdRng;

    let layout_spread = |order: RefreshOrder| -> u64 {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            os.mkdir("/mix").unwrap();
            // A directory with one big file created in the middle of many
            // small ones, then churned.
            for i in 0..20 {
                let bytes = if i == 10 { 2 << 20 } else { 8 << 10 };
                make_file(os, &format!("/mix/f{i:02}"), bytes).unwrap();
            }
        });
        let mut rng = StdRng::seed_from_u64(5);
        sim.run_one(|os| {
            gray_apps::workload::age_epoch(os, "/mix", 4, 8 << 10, 1, &mut rng).unwrap();
        });
        sim.run_one(move |os| {
            Fldc::new(os).refresh_directory("/mix", order).unwrap();
        });
        // Spread = sum over adjacent (by i-number) small files of the
        // block distance; big jumps mean seeks.
        let ordered: Vec<String> = sim.run_one(|os| {
            let ranks = Fldc::new(os).order_directory("/mix").unwrap();
            ranks
                .into_iter()
                .filter(|r| r.stat.size < 1 << 20)
                .map(|r| r.path)
                .collect()
        });
        let oracle = sim.oracle();
        let firsts: Vec<u64> = ordered
            .iter()
            .map(|p| oracle.file_blocks(p).unwrap()[0])
            .collect();
        firsts.windows(2).map(|w| w[0].abs_diff(w[1])).sum()
    };

    let small_first = layout_spread(RefreshOrder::SmallestFirst);
    let dir_order = layout_spread(RefreshOrder::DirectoryOrder);
    assert!(
        small_first <= dir_order,
        "small-files-first must not scatter small files more: {small_first} vs {dir_order}"
    );
}

/// The sort-by-time design needs no thresholds; verify it still ranks a
/// three-level hierarchy correctly when one is synthesized (memory, disk,
/// and a "tape-slow" region modelled by a queue-saturated disk).
#[test]
fn ablation_sorting_handles_multilevel_latencies() {
    // Synthetic: three probe-time populations; sorting must order them
    // memory < disk < tape without knowing any thresholds.
    let times = [
        3_000.0,      // memory ~3us
        5_000_000.0,  // disk ~5ms
        2_500.0,      // memory
        80_000_000.0, // tape ~80ms
        6_000_000.0,  // disk
        2_800.0,      // memory
    ];
    let clustering = gray_toolbox::kmeans1d(&times, 3);
    assert_eq!(clustering.assignment, vec![0, 1, 0, 2, 1, 0]);
}

/// Timer resolution (paper §5: "we often time operations that complete
/// very quickly; thus, timer resolution is an issue"). FCCD's
/// microsecond-scale hit probes survive a 1 µs gettimeofday-style timer
/// (hits quantize to ~0 but misses are milliseconds), yet a 10 ms-tick
/// timer destroys the signal.
#[test]
fn ablation_timer_resolution_bounds_fccd() {
    let cold_units_detected = |quantum_ns: u64| -> usize {
        let mut cfg = SimConfig::small();
        cfg.noise.timer_quantum_ns = quantum_ns;
        let mut sim = Sim::new(cfg);
        let size = 16u64 << 20;
        sim.run_one(|os| make_file(os, "/tq", size).unwrap());
        sim.flush_file_cache();
        // Warm the first half.
        sim.run_one(move |os| {
            let fd = os.open("/tq").unwrap();
            os.read_discard(fd, 0, size / 2).unwrap();
            os.close(fd).unwrap();
        });
        let report = sim.run_one(move |os| {
            let params = FccdParams {
                access_unit: 2 << 20,
                prediction_unit: 1 << 20,
                ..FccdParams::default()
            };
            let fccd = Fccd::new(os, params);
            let fd = os.open("/tq").unwrap();
            let r = fccd.probe_file(fd, size);
            os.close(fd).unwrap();
            r
        });
        report
            .units
            .iter()
            .map(|u| u.probe_time > gray_toolbox::GrayDuration::from_millis(1))
            .filter(|&cold| cold)
            .count()
    };
    // 4 of 8 access units are cold.
    let rdtsc = cold_units_detected(1);
    let gettimeofday = cold_units_detected(1_000);
    let coarse = cold_units_detected(20_000_000);
    assert_eq!(rdtsc, 4, "rdtsc-grade timer must be exact");
    assert_eq!(
        gettimeofday, 4,
        "microsecond timers still separate µs hits from ms misses"
    );
    assert!(
        coarse < 4,
        "a 20 ms-tick timer must lose the signal: saw {coarse} cold units"
    );
}

/// MAC under a microsecond timer: self-calibration can no longer
/// distinguish a 250 ns resident touch from a 4 µs zero-fill, but the
/// estimate still works because the decisive signal (millisecond swap
/// activity) dwarfs the quantum.
#[test]
fn ablation_mac_survives_microsecond_timer() {
    let mut cfg = SimConfig::small().without_noise();
    cfg.noise.timer_quantum_ns = 1_000;
    let mut sim = Sim::new(cfg);
    let est = sim.run_one(|os| {
        let mac = Mac::new(
            os,
            MacParams {
                initial_increment: 1 << 20,
                max_increment: 16 << 20,
                ..MacParams::default()
            },
        );
        mac.available_estimate(128 << 20).unwrap()
    });
    let usable = 56u64 << 20;
    assert!(
        est > usable / 2 && est <= usable,
        "estimate {} MB of {} MB usable",
        est >> 20,
        usable >> 20
    );
}
