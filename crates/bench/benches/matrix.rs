//! `cargo bench --bench matrix` — see `gray_bench::suites::matrix`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::matrix::register);
}
