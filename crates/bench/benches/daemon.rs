//! `cargo bench --bench daemon` — see `gray_bench::suites::daemon`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::daemon::register);
}
