//! `cargo bench --bench substrate` — see `gray_bench::suites::substrate`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::substrate::register);
}
