//! `cargo bench --bench covert` — see `gray_bench::suites::covert`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::covert::register);
}
