//! `cargo bench --bench figures` — see `gray_bench::suites::figures`.

use gray_toolbox::bench::Harness;
use std::time::Duration;

fn main() {
    let mut h = Harness::new()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .min_iters(10);
    gray_bench::suites::figures::register(&mut h);
}
