//! One benchmark per paper table and figure: each runs a reduced-size
//! version of the corresponding `repro` harness, so regressions in any
//! experiment's cost show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use repro::Scale;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("table1", |b| {
        b.iter(|| black_box(repro::tables::render_table1().len()))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(repro::tables::render_table2().len()))
    });
    group.bench_function("fig1_probe_correlation", |b| {
        b.iter(|| black_box(repro::fig1::run(Scale::Tiny).cells.len()))
    });
    group.bench_function("fig2_single_file_scan", |b| {
        b.iter(|| black_box(repro::fig2::run(Scale::Tiny).points.len()))
    });
    group.bench_function("fig3_applications", |b| {
        b.iter(|| black_box(repro::fig3::run(Scale::Tiny).grep.normalized()))
    });
    group.bench_function("fig4_multi_platform", |b| {
        b.iter(|| black_box(repro::fig4::run(Scale::Tiny).rows.len()))
    });
    group.bench_function("fig5_file_ordering", |b| {
        b.iter(|| black_box(repro::fig5::run(Scale::Tiny).rows.len()))
    });
    group.bench_function("fig6_aging", |b| {
        b.iter(|| black_box(repro::fig6::run_with(Scale::Tiny, 6, 5).points.len()))
    });
    group.bench_function("fig7_sort_with_mac", |b| {
        b.iter(|| black_box(repro::fig7::run(Scale::Tiny).points.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
