//! `cargo bench --bench figures` — see `gray_bench::suites::figures`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::figures::register);
}
