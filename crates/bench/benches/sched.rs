//! `cargo bench --bench sched` — see `gray_bench::suites::sched`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::sched::register);
}
