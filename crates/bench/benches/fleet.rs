//! `cargo bench --bench fleet` — see `gray_bench::suites::fleet`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::fleet::register);
}
