//! `cargo bench --bench ablations` — see `gray_bench::suites::ablations`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::ablations::register);
}
