//! `cargo bench --bench obs` — see `gray_bench::suites::obs`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::obs::register);
}
