//! `cargo bench --bench toolbox` — see `gray_bench::suites::toolbox`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::toolbox::register);
}
