//! End-to-end ICL operation benchmarks on a small simulated machine.

use gray_bench::{tiny_corpus, tiny_fccd, tiny_sim};
use gray_toolbox::bench::Harness;
use graybox::fccd::Fccd;
use graybox::fldc::Fldc;
use graybox::mac::{Mac, MacParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_icl(h: &mut Harness) {
    h.bench_function("fccd_order_16_files", |b| {
        let mut sim = tiny_sim();
        let paths = tiny_corpus(&mut sim, 16, 256 << 10);
        b.iter(|| {
            let paths = paths.clone();
            sim.run_one(move |os| {
                let fccd = Fccd::new(os, tiny_fccd());
                black_box(fccd.order_files(&paths).len())
            })
        })
    });

    h.bench_function("fldc_order_directory_64", |b| {
        let mut sim = tiny_sim();
        let _ = tiny_corpus(&mut sim, 64, 8 << 10);
        b.iter(|| {
            sim.run_one(|os| {
                let fldc = Fldc::new(os);
                black_box(fldc.order_directory("/bench").unwrap().len())
            })
        })
    });

    h.bench_function("mac_available_estimate", |b| {
        let mut sim = tiny_sim();
        b.iter(|| {
            sim.run_one(|os| {
                let mac = Mac::new(
                    os,
                    MacParams {
                        initial_increment: 256 << 10,
                        max_increment: 4 << 20,
                        ..MacParams::default()
                    },
                );
                black_box(mac.available_estimate(16 << 20).unwrap())
            })
        })
    });
}

fn main() {
    let mut h = Harness::new()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    bench_icl(&mut h);
}
