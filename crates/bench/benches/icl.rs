//! `cargo bench --bench icl` — see `gray_bench::suites::icl`.

use gray_toolbox::bench::Harness;
use std::time::Duration;

fn main() {
    let mut h = Harness::new()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    gray_bench::suites::icl::register(&mut h);
}
