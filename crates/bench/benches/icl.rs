//! `cargo bench --bench icl` — see `gray_bench::suites::icl`.

fn main() {
    gray_bench::suites::run_standalone(gray_bench::suites::icl::register);
}
