//! Shared scaffolding for the offline benchmark suite (gray_toolbox::bench).
//!
//! The benches cover four layers:
//!
//! - `benches/toolbox.rs` — the gray toolbox's statistical primitives
//!   (these sit on every probe's hot path);
//! - `benches/substrate.rs` — simulator throughput: disk service-time
//!   evaluation, cache operations, file-system operations, page touches;
//! - `benches/icl.rs` — end-to-end ICL operations (FCCD probe/plan, FLDC
//!   ordering, MAC estimation) on a small simulated machine;
//! - `benches/figures.rs` — one bench per paper table and figure, running
//!   a reduced-size version of the corresponding `repro` harness;
//! - `benches/ablations.rs` — timing for the design alternatives called
//!   out in DESIGN.md (probe rounds, differentiation strategy, MAC
//!   increment policy).

#![forbid(unsafe_code)]

pub mod suites;

use gray_apps::workload::make_files;
use graybox::os::GrayBoxOs;
use simos::{Sim, SimConfig};

/// A tiny simulated machine (16 MB RAM) for microbench-scale work.
pub fn tiny_sim() -> Sim {
    let mut cfg = SimConfig::small().without_noise();
    cfg.mem_bytes = 16 << 20;
    cfg.kernel_reserve_bytes = 2 << 20;
    Sim::new(cfg)
}

/// A tiny corpus of warm files for ICL benches; returns paths.
pub fn tiny_corpus(sim: &mut Sim, count: usize, bytes: u64) -> Vec<String> {
    let paths = sim.run_one(move |os| make_files(os, "/bench", count, bytes).unwrap());
    sim.flush_file_cache();
    // Warm half of them.
    let warm: Vec<String> = paths.iter().step_by(2).cloned().collect();
    sim.run_one(move |os| {
        for p in &warm {
            let fd = os.open(p).unwrap();
            os.read_discard(fd, 0, bytes).unwrap();
            os.close(fd).unwrap();
        }
    });
    paths
}

/// Small FCCD parameters proportioned to the tiny machine.
pub fn tiny_fccd() -> graybox::fccd::FccdParams {
    graybox::fccd::FccdParams {
        access_unit: 1 << 20,
        prediction_unit: 256 << 10,
        ..graybox::fccd::FccdParams::default()
    }
}
