//! The covert-channel suite: the adversarial platform × channel ×
//! defender grid, scored as channel capacity.
//!
//! Everything gated here is **virtual-time deterministic**: each cell is
//! a self-seeded three-process simulation (transmitter, receiver,
//! defender) whose score — received bits, errors, capacity, defender
//! cost, digest — is bit-identical for any host worker count. The
//! headline carries the grid digest and the worker-count bit-identity
//! flag; the per-cell lines carry capacity and BER so `--diff --strict`
//! can re-check the paper-level claims directly from the baseline file:
//!
//! - a quiet (no-defender) channel decodes error-free on the quiet
//!   platform, for both the FCCD (read-side) and WBD (write-side)
//!   channels;
//! - the noise defender measurably degrades the FCCD channel;
//! - the eager-flush defender measurably degrades the WBD channel.

use covert::{grid_digest, run_grid, ChannelScore, CovertGridConfig};
use gray_toolbox::bench::Harness;
use gray_toolbox::pool::{JobPanic, Pool};
use std::hint::black_box;

/// The `covert` headline plus the scored grid.
#[derive(Debug, Clone)]
pub struct CovertResult {
    /// Cells in the grid.
    pub cells: usize,
    /// Cells that panicked (structured per-cell errors, not aborts).
    pub panicked: usize,
    /// Workers in the N-worker run.
    pub workers: usize,
    /// Host hardware parallelism — context only.
    pub host_cpus: usize,
    /// FNV fingerprint over every cell's digest, in grid order.
    pub covert_digest: u64,
    /// Whether the 1-worker and N-worker grids were bit-identical.
    /// Gated: `false` is always a hard regression.
    pub identical: bool,
    /// Sum of entropy-discounted capacities over the quiet platform's
    /// no-defender cells — the channel strength the defenders are scored
    /// against.
    pub quiet_capacity_bps: f64,
    /// Bit errors summed over the quiet platform's no-defender cells.
    /// Gated: must stay 0. Scoped to the quiet platform because the
    /// platform axis is itself part of the channel's noise floor — the
    /// Solaris-like sticky policy can evict a transmitter's own freshly
    /// dirtied page (the kernel writes it back, draining residue) and
    /// flip a WBD bit with no defender at all; that is a per-cell
    /// finding in the grid lines, not a protocol failure.
    pub quiet_errors: u64,
    /// Schedule overruns summed over all cells (0 on a sound protocol).
    pub late_wakeups: u64,
    /// The scored grid, in expansion order.
    pub grid: Vec<Result<ChannelScore, JobPanic>>,
}

impl CovertResult {
    /// The `covert` headline's JSON fields (one line; `covert_digest` is
    /// the locator key and collides with no other headline's probes).
    pub fn json_fields(&self) -> String {
        format!(
            "\"cells\":{},\"panicked\":{},\"workers\":{},\"host_cpus\":{},\
             \"covert_digest\":{},\"identical\":{},\"quiet_capacity_bps\":{:.4},\
             \"quiet_errors\":{},\"late_wakeups\":{}",
            self.cells,
            self.panicked,
            self.workers,
            self.host_cpus,
            self.covert_digest,
            self.identical,
            self.quiet_capacity_bps,
            self.quiet_errors,
            self.late_wakeups
        )
    }

    /// One JSON object per cell for the baseline file's `covert_grid`
    /// section. `channel_cell` (not `cell`) keys the lines so the matrix
    /// grid's scanner probes never match them.
    pub fn grid_json_lines(&self) -> Vec<String> {
        self.grid
            .iter()
            .map(|cell| match cell {
                Ok(c) => format!(
                    "{{\"channel_cell\":\"{}\",\"bits\":{},\"errors\":{},\
                     \"ber\":{:.4},\"capacity_bps\":{:.4},\"tx_work_ns\":{},\
                     \"def_work_ns\":{},\"flusher_runs\":{},\"cell_virtual_ns\":{},\
                     \"late\":{},\"cell_digest\":{}}}",
                    c.label,
                    c.bits,
                    c.errors,
                    c.ber,
                    c.capacity_bps,
                    c.transmitter_work_ns,
                    c.defender_work_ns,
                    c.flusher_runs,
                    c.virtual_ns,
                    c.late_wakeups,
                    c.digest
                ),
                Err(p) => format!(
                    "{{\"channel_cell_index\":{},\"panic\":\"{}\"}}",
                    p.index,
                    p.message.escape_default()
                ),
            })
            .collect()
    }
}

/// Runs the covert grid (full or smoke) twice — one worker, then the
/// environment's worker count — and scores the result.
pub fn run(smoke: bool) -> CovertResult {
    let cfg = if smoke {
        CovertGridConfig::smoke()
    } else {
        CovertGridConfig::full()
    };
    run_with(&cfg)
}

/// [`run`] with an explicit grid (tests use tiny ones).
pub fn run_with(cfg: &CovertGridConfig) -> CovertResult {
    let one = Pool::with_workers(1);
    let many = Pool::from_env();

    let grid = run_grid(cfg, &one);
    let grid_many = run_grid(cfg, &many);
    let digest = grid_digest(&grid);
    let identical = grid == grid_many && digest == grid_digest(&grid_many);

    let scored: Vec<&ChannelScore> = grid.iter().filter_map(|c| c.as_ref().ok()).collect();
    let quiet: Vec<&&ChannelScore> = scored
        .iter()
        .filter(|c| c.label.starts_with("linux/") && c.label.contains("/none/"))
        .collect();
    CovertResult {
        cells: grid.len(),
        panicked: grid.len() - scored.len(),
        workers: many.workers(),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        covert_digest: digest,
        identical,
        quiet_capacity_bps: quiet.iter().map(|c| c.capacity_bps).sum(),
        quiet_errors: quiet.iter().map(|c| c.errors).sum(),
        late_wakeups: scored.iter().map(|c| c.late_wakeups).sum(),
        grid,
    }
}

/// Registers the host-time covert benches: one cell per channel kind, so
/// `cargo bench --bench covert` tracks the cost of a single adversarial
/// simulation without re-running the whole grid per iteration.
pub fn register(h: &mut Harness) {
    use covert::{ChannelKind, ChannelSpec, DefenderKind};
    use gray_toolbox::GrayDuration;
    use simos::Platform;

    let spec = |channel: ChannelKind| ChannelSpec {
        index: 0,
        platform: Platform::LinuxLike,
        channel,
        defender: DefenderKind::Noise,
        bits: 8,
        slot: GrayDuration::from_millis(50),
        pages_per_bit: 4,
        seed: 0xBE9C,
    };
    let fccd = spec(ChannelKind::Fccd);
    h.bench_function("covert_cell_fccd_noise", move |b| {
        b.iter(|| black_box(fccd.run()));
    });
    let wbd = spec(ChannelKind::Wbd);
    h.bench_function("covert_cell_wbd_noise", move |b| {
        b.iter(|| black_box(wbd.run()));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use covert::{ChannelKind, DefenderKind};
    use gray_toolbox::GrayDuration;
    use simos::Platform;

    fn tiny() -> CovertGridConfig {
        CovertGridConfig {
            platforms: vec![Platform::LinuxLike],
            channels: vec![ChannelKind::Fccd, ChannelKind::Wbd],
            defenders: vec![DefenderKind::Idle, DefenderKind::EagerFlush],
            bits: 8,
            slot: GrayDuration::from_millis(50),
            pages_per_bit: 4,
            seed: 0x51,
        }
    }

    #[test]
    fn tiny_covert_grid_is_identical_and_emits_clean_json() {
        let r = run_with(&tiny());
        assert!(r.identical, "grid must not depend on worker count");
        assert_eq!(r.cells, 4);
        assert_eq!(r.panicked, 0);
        assert_eq!(r.quiet_errors, 0, "no-defender cells must be error-free");
        assert!(r.quiet_capacity_bps > 0.0);
        // The baseline diff scans line-by-line with substring probes;
        // none of the other headlines' probe keys may appear here, and
        // the matrix grid's `"cell":` must not match our cell lines.
        let lines: Vec<String> = r
            .grid_json_lines()
            .into_iter()
            .chain([r.json_fields()])
            .collect();
        for line in &lines {
            for probe in [
                "\"serial_virtual_ns\":",
                "\"virtual_ns_per_query\":",
                "\"xl_virtual_ns\":",
                "\"fccd_precision\":",
                "\"grid_digest\":",
                "\"one_worker_median_ns\":",
                "\"cell\":",
                "\"mean_ns\":",
            ] {
                assert!(!line.contains(probe), "{line} collides with {probe}");
            }
        }
        assert!(r.json_fields().contains("\"covert_digest\":"));
        assert!(r.grid_json_lines()[0].contains("\"channel_cell\":"));
    }
}
