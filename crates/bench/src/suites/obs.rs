//! Observability suite: the virtual-time profiler's two contracts.
//!
//! The profiler ([`gray_toolbox::profile`]) promises two things, and
//! this suite turns both into gated baseline rows:
//!
//! 1. **Observation only.** Enabling attribution must not move a single
//!    virtual-time result: the headline runs an identical FCCD probe
//!    fleet and a tiny covert grid with the profiler off and then on,
//!    and records whether the per-process digests, the makespans, and
//!    the grid digest came back bit-identical. `identical:false` is
//!    always a hard regression under `--diff --strict`.
//! 2. **Free when off.** The disabled hook is one relaxed atomic load
//!    and a branch. The `obs_disabled_overhead` row prices exactly that:
//!    a paired, interleaved comparison ([`gray_toolbox::paired_host_compare`])
//!    of a pure splitmix64 work loop against the same loop calling the
//!    disabled `charge`/`op_scope` hooks every iteration. The strict
//!    diff fails only when the sign test finds the hooked loop
//!    significantly slower **and** the median paired speedup falls below
//!    0.8 — the same decision rule as the fleet and matrix host rows.
//!
//! The headline also persists the profile tree itself: total attributed
//! virtual time, leaf/charge counts, the tree digest, and the hottest
//! leaf path — so the baseline file documents where the fleet's virtual
//! time went, not just that attribution happened. A third row
//! (`obs_profiler_cost`) prices the *enabled* profiler on the same
//! fleet, informational only: profiling is expected to cost host time.

use covert::{grid_digest, run_grid, CovertGridConfig};
use gray_toolbox::bench::Harness;
use gray_toolbox::outlier::OutlierPolicy;
use gray_toolbox::pool::Pool;
use gray_toolbox::profile;
use gray_toolbox::rng::splitmix64;
use gray_toolbox::stats::PairedHostReport;
use graybox::fccd::Fccd;
use graybox::os::GrayBoxOs;
use simos::scenario::{fleet_machine, spread_corpus, warm};
use simos::{exec::Workload, ExecBackend, SimProc};
use std::hint::black_box;

/// Processes in the headline attribution fleet.
pub const OBS_PROCS: usize = 96;
/// Fleet size under `--smoke`.
pub const SMOKE_PROCS: usize = 32;
/// Paired rounds for the hook-overhead and profiler-cost rows. Hook
/// rounds are microseconds each, so the budget is generous enough for
/// the sign test to reach significance when there is a real effect.
pub const FULL_ROUNDS: usize = 15;
/// Paired rounds under `--smoke`.
pub const SMOKE_ROUNDS: usize = 5;
/// Hook invocations per measured round of the overhead row.
pub const HOOK_OPS: u64 = 1 << 15;
/// Data disks of the attribution fleet's machine.
const DISKS: usize = 2;
/// CPU slots of the attribution fleet's machine.
const CPUS: u32 = 4;
/// Corpus files per disk (every other one warm).
const FILES_PER_DISK: usize = 3;
/// Bytes per corpus file.
const FILE_BYTES: u64 = 128 << 10;

/// The `obs` headline plus its two paired host-time rows.
#[derive(Debug, Clone)]
pub struct ObsResult {
    /// Fleet size of the attribution run.
    pub procs: usize,
    /// Virtual makespan with the profiler off — deterministic, gated
    /// with the usual 10% slack.
    pub baseline_virtual_ns: u64,
    /// Virtual makespan with the profiler on.
    pub profiled_virtual_ns: u64,
    /// Whether profiler-on reproduced profiler-off bit for bit: fleet
    /// digests, makespans, and the covert grid digest. Gated: `false`
    /// is always a hard regression.
    pub identical: bool,
    /// Virtual nanoseconds the profiler attributed across the fleet.
    /// Gated: zero means the charge hooks came unwired.
    pub charged_total_ns: u64,
    /// Distinct attribution paths (leaves) in the profile tree.
    pub profile_leaves: usize,
    /// Total charge events recorded.
    pub profile_charges: u64,
    /// FNV fingerprint of the profile tree (informational — re-tuning
    /// the scenario legitimately moves it).
    pub profile_digest: u64,
    /// Covert grid digest of the profiler-off run (informational).
    pub obs_grid_digest: u64,
    /// Hottest leaf path, flamegraph-frame syntax.
    pub top_path: String,
    /// Virtual nanoseconds at the hottest leaf.
    pub top_ns: u64,
    /// Paired pure-loop baseline vs disabled-hooks candidate.
    pub disabled: PairedHostReport,
    /// Paired profiler-off baseline vs profiler-on candidate on the
    /// fleet (informational).
    pub enabled: PairedHostReport,
}

impl ObsResult {
    /// The headline's JSON fields. `charged_total_ns` is the locator.
    pub fn json_fields(&self) -> String {
        format!(
            "\"procs\":{},\"baseline_virtual_ns\":{},\"profiled_virtual_ns\":{},\
             \"identical\":{},\"charged_total_ns\":{},\"profile_leaves\":{},\
             \"profile_charges\":{},\"profile_digest\":{},\"obs_grid_digest\":{},\
             \"top_path\":\"{}\",\"top_ns\":{}",
            self.procs,
            self.baseline_virtual_ns,
            self.profiled_virtual_ns,
            self.identical,
            self.charged_total_ns,
            self.profile_leaves,
            self.profile_charges,
            self.profile_digest,
            self.obs_grid_digest,
            self.top_path,
            self.top_ns
        )
    }

    /// The `obs_disabled_overhead` row: the full paired measurement and
    /// its sign-test inputs, so the diff re-applies the decision rule
    /// offline. `hook_median_ns` is the locator.
    pub fn disabled_json_fields(&self) -> String {
        let p = &self.disabled;
        format!(
            "\"base_median_ns\":{:.0},\"hook_median_ns\":{:.0},\"ops\":{},\
             \"speedup\":{:.3},\"rounds\":{},\"kept\":{},\"sign_less\":{},\
             \"sign_greater\":{},\"sign_ties\":{},\"p_value\":{:.6}",
            p.baseline_median_ns,
            p.candidate_median_ns,
            HOOK_OPS,
            p.speedup,
            p.rounds,
            p.kept,
            p.sign.less,
            p.sign.greater,
            p.sign.ties,
            p.sign.p_value
        )
    }

    /// The `obs_profiler_cost` row (informational). `profiled_median_ns`
    /// is the locator.
    pub fn enabled_json_fields(&self) -> String {
        let p = &self.enabled;
        format!(
            "\"off_median_ns\":{:.0},\"profiled_median_ns\":{:.0},\"procs\":{},\
             \"speedup\":{:.3},\"rounds\":{},\"kept\":{},\"sign_less\":{},\
             \"sign_greater\":{},\"sign_ties\":{},\"p_value\":{:.6}",
            p.baseline_median_ns,
            p.candidate_median_ns,
            self.procs,
            p.speedup,
            p.rounds,
            p.kept,
            p.sign.less,
            p.sign.greater,
            p.sign.ties,
            p.sign.p_value
        )
    }
}

/// Runs a `procs`-process FCCD probe fleet on the events executor and
/// returns the per-process observation digests plus the virtual
/// makespan — the exact fingerprints the profiler must not move.
fn run_fleet(procs: usize) -> (Vec<u64>, u64) {
    let mut sim = fleet_machine(DISKS, CPUS, ExecBackend::Events);
    let files = spread_corpus(&mut sim, DISKS, FILES_PER_DISK, FILE_BYTES);
    let warm_set: Vec<(String, u64)> = files.iter().skip(1).step_by(2).cloned().collect();
    warm(&mut sim, &warm_set);
    let t0 = sim.now();
    let workloads: Vec<(String, Workload<'_, u64>)> = (0..procs)
        .map(|i| {
            let (path, bytes) = files[i % files.len()].clone();
            let w: Workload<'_, u64> = Box::new(move |os: &SimProc| {
                let fd = os.open(&path).unwrap();
                let fccd = Fccd::with_fixed_seed(os, crate::tiny_fccd());
                let report = fccd.probe_file(fd, bytes);
                os.close(fd).unwrap();
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for unit in &report.units {
                    for v in [unit.offset, unit.probe_time.as_nanos(), unit.probes as u64] {
                        h ^= v;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                }
                h ^ os.now().as_nanos()
            });
            (format!("probe{i}"), w)
        })
        .collect();
    let digests = sim.run(workloads);
    (digests, sim.now().since(t0).as_nanos())
}

/// The tiny covert grid used for the cross-subsystem half of the
/// bit-identity claim (4 cells — one platform, both channels, two
/// defenders).
fn tiny_grid() -> CovertGridConfig {
    CovertGridConfig {
        platforms: vec![simos::Platform::LinuxLike],
        defenders: vec![covert::DefenderKind::Idle, covert::DefenderKind::EagerFlush],
        bits: 8,
        ..CovertGridConfig::full()
    }
}

/// Sixteen splitmix64 steps — the unit of "real work" the hook-overhead
/// row hides the disabled hooks inside.
#[inline]
fn work_unit(seed: u64) -> u64 {
    let mut s = seed;
    let mut acc = 0u64;
    for _ in 0..16 {
        acc ^= splitmix64(&mut s);
    }
    acc
}

/// Runs the headline attribution experiment and both paired rows.
pub fn run(smoke: bool) -> ObsResult {
    let procs = if smoke { SMOKE_PROCS } else { OBS_PROCS };
    let rounds = if smoke { SMOKE_ROUNDS } else { FULL_ROUNDS };
    let pool = Pool::with_workers(2);

    // Contract 1: profiler on must reproduce profiler off bit for bit.
    assert!(!profile::enabled(), "profiler must start disabled");
    let (off_digests, off_virtual) = run_fleet(procs);
    let off_grid = grid_digest(&run_grid(&tiny_grid(), &pool));
    let guard = profile::capture();
    let (on_digests, on_virtual) = run_fleet(procs);
    let on_grid = grid_digest(&run_grid(&tiny_grid(), &pool));
    let snap = profile::snapshot();
    drop(guard);
    let identical = off_digests == on_digests && off_virtual == on_virtual && off_grid == on_grid;
    let (top_path, top_ns) = snap
        .nodes
        .iter()
        .max_by_key(|(path, agg)| (agg.ns, std::cmp::Reverse(path.as_str())))
        .map(|(path, agg)| (path.clone(), agg.ns))
        .unwrap_or_default();

    // Contract 2: the disabled hooks priced against the bare loop,
    // paired and interleaved.
    let disabled = paired_host_compare_hooks(rounds);

    // Informational: what turning the profiler on costs on this fleet.
    let enabled = gray_toolbox::paired_host_compare(
        rounds.min(5),
        || {
            black_box(run_fleet(procs));
        },
        || {
            let _g = profile::capture();
            black_box(run_fleet(procs));
        },
        OutlierPolicy::default(),
    );

    ObsResult {
        procs,
        baseline_virtual_ns: off_virtual,
        profiled_virtual_ns: on_virtual,
        identical,
        charged_total_ns: snap.total_ns,
        profile_leaves: snap.nodes.len(),
        profile_charges: snap.nodes.values().map(|a| a.count).sum(),
        profile_digest: snap.digest(),
        obs_grid_digest: off_grid,
        top_path,
        top_ns,
        disabled,
        enabled,
    }
}

/// Paired measurement of the disabled-hook cost: a pure work loop vs the
/// same loop calling `op_scope` + `charge` every iteration with the
/// profiler off.
fn paired_host_compare_hooks(rounds: usize) -> PairedHostReport {
    assert!(!profile::enabled(), "overhead row prices the DISABLED path");
    gray_toolbox::paired_host_compare(
        rounds,
        || {
            let mut h = 0u64;
            for i in 0..HOOK_OPS {
                h ^= work_unit(i);
            }
            black_box(h);
        },
        || {
            let mut h = 0u64;
            for i in 0..HOOK_OPS {
                let _op = profile::op_scope("bench_op");
                profile::charge(i, "cpu", 1);
                h ^= work_unit(i);
            }
            black_box(h);
        },
        OutlierPolicy::default(),
    )
}

/// Registers the metrics/profiler host-time benches.
pub fn register(h: &mut Harness) {
    h.bench_function("metrics_counter_inc", |b| {
        let reg = gray_toolbox::metrics::Registry::new();
        let c = reg.counter("bench.counter");
        b.iter(|| c.inc());
    });
    h.bench_function("metrics_histogram_record", |b| {
        let reg = gray_toolbox::metrics::Registry::new();
        let hist = reg.histogram("bench.latency");
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 33));
        });
    });
    h.bench_function("metrics_snapshot_64", |b| {
        let reg = gray_toolbox::metrics::Registry::new();
        for i in 0..64 {
            reg.counter_labeled("bench.family", &format!("k{i}")).inc();
        }
        b.iter(|| black_box(reg.snapshot()));
    });
    h.bench_function("profile_charge_disabled", |b| {
        profile::disable();
        b.iter(|| {
            let _op = profile::op_scope("bench_op");
            profile::charge(1, "cpu", black_box(10));
        });
    });
    h.bench_function("profile_charge_enabled", |b| {
        let _g = profile::capture();
        b.iter(|| {
            let _op = profile::op_scope("bench_op");
            profile::charge(1, "cpu", black_box(10));
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 pin of the observation-only contract: enabling the
    /// profiler changes no digest, no clock, and no grid fingerprint.
    #[test]
    fn profiler_toggle_is_bit_identical() {
        let (off_digests, off_virtual) = run_fleet(24);
        let pool = Pool::with_workers(2);
        let off_grid = grid_digest(&run_grid(&tiny_grid(), &pool));

        let guard = profile::capture();
        let (on_digests, on_virtual) = run_fleet(24);
        let on_grid = grid_digest(&run_grid(&tiny_grid(), &pool));
        let snap = profile::snapshot();
        drop(guard);

        assert_eq!(off_digests, on_digests, "profiler moved a probe digest");
        assert_eq!(off_virtual, on_virtual, "profiler moved the clock");
        assert_eq!(off_grid, on_grid, "profiler moved the covert grid");
        assert!(off_virtual > 0, "fleet must consume virtual time");
        // And the run was actually attributed, down to kind leaves.
        assert!(snap.total_ns > 0, "no charges recorded");
        assert!(
            snap.nodes.keys().all(|p| p.starts_with("sim;")),
            "every path hangs off the root"
        );
        assert!(
            snap.nodes
                .keys()
                .any(|p| p.ends_with(";disk") || p.ends_with(";cpu")),
            "kind leaves missing: {:?}",
            snap.nodes.keys().take(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rows_are_well_formed_and_collision_free() {
        let r = run(true);
        assert!(r.identical, "profiler perturbed the run at test scale");
        assert!(r.charged_total_ns > 0 && r.profile_leaves > 0);
        assert!(r.top_ns > 0 && r.top_path.starts_with("sim"));
        assert_eq!(r.disabled.rounds, SMOKE_ROUNDS);
        assert!(r.disabled.kept >= 1 && r.disabled.speedup > 0.0);
        // The baseline diff scans line-by-line with substring probes;
        // each obs row must carry its own locator key and no other
        // headline's.
        assert!(r.json_fields().contains("\"charged_total_ns\":"));
        assert!(r.disabled_json_fields().contains("\"hook_median_ns\":"));
        assert!(r.enabled_json_fields().contains("\"profiled_median_ns\":"));
        for line in [
            r.json_fields(),
            r.disabled_json_fields(),
            r.enabled_json_fields(),
        ] {
            for probe in [
                "\"serial_virtual_ns\":",
                "\"virtual_ns_per_query\":",
                "\"xl_virtual_ns\":",
                "\"events_median_ns\":",
                "\"grid_digest\":",
                "\"one_worker_median_ns\":",
                "\"covert_digest\":",
                "\"mean_ns\":",
                "\"fccd_precision\":",
            ] {
                assert!(!line.contains(probe), "{line} collides with {probe}");
            }
        }
    }
}
