//! One benchmark per paper table and figure: each runs a reduced-size
//! version of the corresponding `repro` harness, so regressions in any
//! experiment's cost show up here.

use gray_toolbox::bench::Harness;
use repro::Scale;
use std::hint::black_box;

/// Registers the figure benchmarks.
pub fn register(h: &mut Harness) {
    h.group("paper");

    h.bench_function("table1", |b| {
        b.iter(|| black_box(repro::tables::render_table1().len()))
    });
    h.bench_function("table2", |b| {
        b.iter(|| black_box(repro::tables::render_table2().len()))
    });
    h.bench_function("fig1_probe_correlation", |b| {
        b.iter(|| black_box(repro::fig1::run(Scale::Tiny).cells.len()))
    });
    h.bench_function("fig2_single_file_scan", |b| {
        b.iter(|| black_box(repro::fig2::run(Scale::Tiny).points.len()))
    });
    h.bench_function("fig3_applications", |b| {
        b.iter(|| black_box(repro::fig3::run(Scale::Tiny).grep.normalized()))
    });
    h.bench_function("fig4_multi_platform", |b| {
        b.iter(|| black_box(repro::fig4::run(Scale::Tiny).rows.len()))
    });
    h.bench_function("fig5_file_ordering", |b| {
        b.iter(|| black_box(repro::fig5::run(Scale::Tiny).rows.len()))
    });
    h.bench_function("fig6_aging", |b| {
        b.iter(|| black_box(repro::fig6::run_with(Scale::Tiny, 6, 5).points.len()))
    });
    h.bench_function("fig7_sort_with_mac", |b| {
        b.iter(|| black_box(repro::fig7::run(Scale::Tiny).points.len()))
    });
    h.finish_group();
}
