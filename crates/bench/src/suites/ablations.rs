//! Timing ablations for the design choices DESIGN.md calls out:
//! probe rounds, differentiation strategy (sort vs cluster vs threshold),
//! and the MAC increment policy (fixed vs doubling).

use crate::{tiny_corpus, tiny_fccd, tiny_sim};
use gray_toolbox::bench::Harness;
use gray_toolbox::two_means;
use graybox::fccd::{Fccd, FccdParams};
use graybox::mac::{Mac, MacParams};
use std::hint::black_box;

/// Registers the ablation benchmarks.
pub fn register(h: &mut Harness) {
    // Probe rounds: more rounds buy confidence at probing cost.
    for rounds in [1u32, 3] {
        h.bench_function(&format!("fccd_probe_rounds_{rounds}"), |b| {
            let mut sim = tiny_sim();
            let paths = tiny_corpus(&mut sim, 8, 512 << 10);
            b.iter(|| {
                let paths = paths.clone();
                sim.run_one(move |os| {
                    let params = FccdParams {
                        probe_rounds: rounds,
                        ..tiny_fccd()
                    };
                    black_box(Fccd::new(os, params).order_files(&paths).len())
                })
            })
        });
    }

    // Differentiation strategy on a bimodal probe-time population:
    // sorting (the paper's thresholdless choice) vs exact 2-means.
    let times: Vec<f64> = (0..256)
        .map(|i| {
            if i % 3 == 0 {
                5_000_000.0
            } else {
                2_000.0 + i as f64
            }
        })
        .collect();
    h.bench_function("differentiate_by_sort", |b| {
        b.iter(|| {
            let mut t = times.clone();
            t.sort_by(|a, b| a.partial_cmp(b).unwrap());
            black_box(t[0])
        })
    });
    h.bench_function("differentiate_by_two_means", |b| {
        b.iter(|| black_box(two_means(&times).within_ss))
    });

    // MAC increment policy: fixed small increments probe many more pages
    // than doubling-with-backoff for the same answer.
    for (label, initial, max) in [
        ("fixed", 256u64 << 10, 256u64 << 10),
        ("doubling", 256 << 10, 4 << 20),
    ] {
        h.bench_function(&format!("mac_increment_{label}"), |b| {
            let mut sim = tiny_sim();
            b.iter(|| {
                sim.run_one(|os| {
                    let mac = Mac::new(
                        os,
                        MacParams {
                            initial_increment: initial,
                            max_increment: max,
                            ..MacParams::default()
                        },
                    );
                    black_box(mac.available_estimate(12 << 20).unwrap())
                })
            })
        });
    }
}
