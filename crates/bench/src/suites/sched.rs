//! Probe-scheduler benchmarks: serial vs concurrent multi-file FCCD
//! probing through `gray-sched`.
//!
//! The headline number is **virtual-time** makespan, not host time: the
//! discrete-event simulator's host cost does not shrink when probes
//! overlap (it still evaluates every event), but the *simulated* clock
//! does — four cold files on four disks probed concurrently finish in
//! roughly the span of the slowest one instead of the sum of all four.
//! [`fccd_multifile_speedup`] reports that ratio; `register` adds
//! host-time entries so the suite also shows up in the harness baseline.

use gray_sched::{FccdFleet, SchedConfig, Scheduler, SimExecutor};
use gray_toolbox::bench::Harness;
use graybox::os::GrayBoxOs;
use simos::{DiskParams, Sim, SimConfig};
use std::hint::black_box;

use crate::tiny_fccd;

/// Number of files (and disks) in the multi-file probe comparison.
pub const FLEET_FILES: usize = 4;
/// Bytes per probed file.
const FILE_BYTES: u64 = 2 << 20;

/// Serial-vs-concurrent comparison of one fleet classification.
#[derive(Debug, Clone, Copy)]
pub struct SchedSpeedup {
    /// Summed wave spans at concurrency 1 (virtual ns).
    pub serial_ns: u64,
    /// Makespan of the single concurrency-4 wave (virtual ns).
    pub concurrent_ns: u64,
    /// `serial_ns / concurrent_ns`.
    pub speedup: f64,
}

/// A four-disk machine with one cold probe file per disk.
fn sched_sim() -> (Sim, Vec<(String, u64)>) {
    let mut cfg = SimConfig::small().without_noise();
    cfg.disks = vec![DiskParams::small(); FLEET_FILES];
    cfg.swap_disk = 1;
    // Two CPUs per worker so the comparison isolates *disk* overlap: the
    // shared CPU bank books each tiny syscall/timer charge on the
    // earliest-free slot, so at exactly one slot per worker the bookings
    // cross-couple the workers and cap the overlap (~1.8x); with slack
    // slots the makespan drops to the slowest single file (~3.4x).
    cfg.cpus = 2 * FLEET_FILES as u32;
    let mut sim = Sim::new(cfg);
    let files: Vec<(String, u64)> = (0..FLEET_FILES)
        .map(|i| {
            let path = if i == 0 {
                "/probe0".to_string()
            } else {
                format!("/d{i}/probe{i}")
            };
            (path, FILE_BYTES)
        })
        .collect();
    let setup = files.clone();
    sim.run_one(move |os| {
        for (path, bytes) in &setup {
            let fd = os.create(path).unwrap();
            os.write_fill(fd, 0, *bytes).unwrap();
            os.close(fd).unwrap();
        }
    });
    sim.flush_file_cache();
    (sim, files)
}

/// Classifies the fleet's files at the given concurrency cap and returns
/// the summed virtual span of all dispatched waves.
fn run_fleet(concurrency: usize) -> u64 {
    let (mut sim, files) = sched_sim();
    // Sub-batch of 1: each probe is its own scheduling point, so the
    // simulator interleaves the workers' probes in causal order and
    // their disk waits genuinely overlap. (A whole-plan batch executes
    // atomically under the kernel lock, which serializes the wave — the
    // batch bound is the concurrency granularity, not just dispatch
    // amortization.)
    let fleet = sim.run_one(|os| FccdFleet::with_fixed_seed(os, tiny_fccd(), 1));
    let mut sched = Scheduler::new(SchedConfig {
        concurrency,
        ..SchedConfig::default()
    });
    let mut exec = SimExecutor::new(&mut sim);
    let ranks = fleet.order_files(&mut sched, &mut exec, &files);
    assert_eq!(ranks.len(), FLEET_FILES);
    sched
        .waves()
        .iter()
        .map(|w| w.span.expect("sim executor reports spans").as_nanos())
        .sum()
}

/// Measures the virtual-time speedup of probing [`FLEET_FILES`] cold files
/// concurrently (one wave) over serially (one wave per file). Both runs
/// use identical fixed-seed plans on identical fresh machines.
pub fn fccd_multifile_speedup() -> SchedSpeedup {
    let serial_ns = run_fleet(1);
    let concurrent_ns = run_fleet(FLEET_FILES);
    SchedSpeedup {
        serial_ns,
        concurrent_ns,
        speedup: serial_ns as f64 / concurrent_ns.max(1) as f64,
    }
}

/// Registers the scheduler benchmarks (host-time: simulator cost of the
/// serial and concurrent dispatch paths, and the scheduler's own queue
/// machinery).
pub fn register(h: &mut Harness) {
    h.bench_function("sched_fccd_4files_serial", |b| {
        b.iter(|| black_box(run_fleet(1)));
    });
    h.bench_function("sched_fccd_4files_concurrent", |b| {
        b.iter(|| black_box(run_fleet(FLEET_FILES)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_probing_beats_serial_by_the_acceptance_bar() {
        let s = fccd_multifile_speedup();
        assert!(
            s.speedup >= 1.5,
            "concurrent multi-file probing must overlap disk service: \
             serial {} ns vs concurrent {} ns ({:.2}x)",
            s.serial_ns,
            s.concurrent_ns,
            s.speedup
        );
    }
}
