//! The benchmark suites, one module per `cargo bench` target. Each
//! exposes `register(&mut Harness)` so the same registrations serve both
//! the per-target bench binaries and the `bench` runner that sweeps all
//! of them into one baseline file.

pub mod ablations;
pub mod figures;
pub mod icl;
pub mod substrate;
pub mod toolbox;

use gray_toolbox::bench::Harness;

/// A suite's registration entry point.
pub type Register = fn(&mut Harness);

/// All suites, in baseline-file order: `(target name, register fn)`.
pub const ALL: [(&str, Register); 5] = [
    ("toolbox", toolbox::register),
    ("substrate", substrate::register),
    ("icl", icl::register),
    ("figures", figures::register),
    ("ablations", ablations::register),
];
