//! The benchmark suites, one module per `cargo bench` target. Each
//! exposes `register(&mut Harness)` so the same registrations serve both
//! the per-target bench binaries and the `bench` runner that sweeps all
//! of them into one baseline file.

pub mod ablations;
pub mod accuracy;
pub mod covert;
pub mod daemon;
pub mod figures;
pub mod fleet;
pub mod icl;
pub mod matrix;
pub mod obs;
pub mod sched;
pub mod substrate;
pub mod toolbox;

use gray_toolbox::bench::Harness;
use std::time::Duration;

/// A suite's registration entry point.
pub type Register = fn(&mut Harness);

/// All suites, in baseline-file order: `(target name, register fn)`.
pub const ALL: [(&str, Register); 11] = [
    ("toolbox", toolbox::register),
    ("substrate", substrate::register),
    ("icl", icl::register),
    ("figures", figures::register),
    ("ablations", ablations::register),
    ("sched", sched::register),
    ("daemon", daemon::register),
    ("fleet", fleet::register),
    ("matrix", matrix::register),
    ("covert", covert::register),
    ("obs", obs::register),
];

/// Runs one suite standalone with the `cargo bench` timing budget — the
/// whole body of every `benches/*.rs` shim.
pub fn run_standalone(register: Register) {
    let mut h = Harness::new()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    register(&mut h);
}
