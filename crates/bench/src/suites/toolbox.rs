//! Benchmarks for the gray toolbox's statistical primitives — these run on
//! every probe's hot path, so they must stay cheap.

use gray_toolbox::bench::{BatchSize, Harness};
use gray_toolbox::{
    discard_outliers, paired_sign_test, two_means, OnlineStats, OutlierPolicy, Summary,
};
use std::hint::black_box;

fn data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 7 == 0 {
                5000.0
            } else {
                10.0 + (i % 13) as f64
            }
        })
        .collect()
}

/// Registers the toolbox benchmarks.
pub fn register(h: &mut Harness) {
    let xs = data(1024);

    h.bench_function("online_stats_push_1k", |b| {
        b.iter_batched(
            OnlineStats::new,
            |mut s| {
                for &x in &xs {
                    s.push(x);
                }
                black_box(s.stddev())
            },
            BatchSize::SmallInput,
        )
    });

    h.bench_function("summary_median_1k", |b| {
        b.iter(|| black_box(Summary::new(&xs).median()))
    });

    h.bench_function("two_means_256", |b| {
        let small = data(256);
        b.iter(|| black_box(two_means(&small).within_ss))
    });

    h.bench_function("discard_outliers_mad_1k", |b| {
        b.iter(|| black_box(discard_outliers(&xs, OutlierPolicy::default()).len()))
    });

    h.bench_function("paired_sign_test_64", |b| {
        let before = data(64);
        let after: Vec<f64> = before.iter().map(|x| x * 1.1).collect();
        b.iter(|| black_box(paired_sign_test(&before, &after).p_value))
    });
}
