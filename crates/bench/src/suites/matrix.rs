//! Host-parallel scenario matrix: the full platform × aging × noise ×
//! mix × fleet-size grid, fanned across host cores, scored per cell.
//!
//! Two properties are recorded, and they are deliberately different in
//! kind:
//!
//! - **The grid itself is deterministic.** Every cell is a self-seeded
//!   virtual-time simulation, so the scored grid — per-cell precision,
//!   recall, MAC error, virtual makespan, digest — is bit-identical
//!   whether one worker runs it or eight. `--diff --strict` gates the
//!   bit-identity flag and the aggregate scores.
//! - **The host speedup is a measurement, not a fact.** N workers vs one
//!   worker is host wall-clock, so it is measured the only way this repo
//!   trusts host time: paired, interleaved in one process (A/B then B/A,
//!   alternating), outlier pairs dropped whole, and *decided* by the
//!   paired sign test rather than a raw ratio. On a single-core host the
//!   honest answer is ~1x, and the headline records `host_cpus` so a
//!   reader can tell a scheduling regression from a small machine.

use gray_toolbox::bench::Harness;
use gray_toolbox::outlier::OutlierPolicy;
use gray_toolbox::pool::{JobPanic, Pool};
use gray_toolbox::stats::PairedHostReport;
use simos::scenario::matrix::{grid_digest, run_grid, CellResult, MatrixConfig};
use std::hint::black_box;

/// Paired measurement rounds for the full grid.
pub const FULL_ROUNDS: usize = 8;
/// Paired measurement rounds under `--smoke`.
pub const SMOKE_ROUNDS: usize = 4;
/// Significance level for the paired sign test.
pub const ALPHA: f64 = 0.05;

/// The `matrix` headline plus the per-cell grid and the paired
/// one-vs-N-worker host-time comparison.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Cells in the grid.
    pub cells: usize,
    /// Cells that panicked (structured per-cell errors, not aborts).
    pub panicked: usize,
    /// Workers in the N-worker run (`GRAY_JOBS` or the host parallelism).
    pub workers: usize,
    /// Host hardware parallelism — context for the speedup number.
    pub host_cpus: usize,
    /// FNV fingerprint over every cell's digest, in grid order. Gated:
    /// identical across worker counts by construction.
    pub grid_digest: u64,
    /// Whether the 1-worker and N-worker grids were bit-identical.
    /// Gated: `false` is always a hard regression.
    pub identical: bool,
    /// Mean FCCD precision over scored cells (deterministic).
    pub precision: f64,
    /// Mean FCCD recall over scored cells (deterministic).
    pub recall: f64,
    /// Mean MAC relative error over scored cells (deterministic).
    pub mac_err: f64,
    /// Total virtual-time makespan of all cells (deterministic).
    pub total_virtual_ns: u64,
    /// The scored grid, in expansion order.
    pub grid: Vec<Result<CellResult, JobPanic>>,
    /// Paired 1-worker (baseline) vs N-worker (candidate) comparison.
    pub paired: PairedHostReport,
}

impl MatrixResult {
    /// The `matrix` headline's JSON fields (one line; keys chosen to
    /// collide with no other headline's line-scanner probes).
    pub fn json_fields(&self) -> String {
        format!(
            "\"cells\":{},\"panicked\":{},\"workers\":{},\"host_cpus\":{},\
             \"grid_digest\":{},\"identical\":{},\"precision\":{:.4},\
             \"recall\":{:.4},\"mac_err\":{:.4},\"total_virtual_ns\":{}",
            self.cells,
            self.panicked,
            self.workers,
            self.host_cpus,
            self.grid_digest,
            self.identical,
            self.precision,
            self.recall,
            self.mac_err,
            self.total_virtual_ns
        )
    }

    /// The `matrix_host_speedup` row's JSON fields: the paired
    /// measurement and its sign-test verdict, in full, so the diff can
    /// re-apply the decision rule without re-running anything.
    pub fn speedup_json_fields(&self) -> String {
        let p = &self.paired;
        format!(
            "\"one_worker_median_ns\":{:.0},\"n_worker_median_ns\":{:.0},\
             \"workers\":{},\"host_cpus\":{},\"speedup\":{:.3},\
             \"rounds\":{},\"kept\":{},\"sign_less\":{},\"sign_greater\":{},\
             \"sign_ties\":{},\"p_value\":{:.6},\"faster\":{}",
            p.baseline_median_ns,
            p.candidate_median_ns,
            self.workers,
            self.host_cpus,
            p.speedup,
            p.rounds,
            p.kept,
            p.sign.less,
            p.sign.greater,
            p.sign.ties,
            p.sign.p_value,
            p.candidate_faster(ALPHA)
        )
    }

    /// One JSON object per cell, for the baseline file's `matrix_grid`
    /// section. Panicked cells serialize their index and message, so a
    /// failure mode is still a stable, diffable artifact.
    pub fn grid_json_lines(&self) -> Vec<String> {
        self.grid
            .iter()
            .map(|cell| match cell {
                Ok(c) => format!(
                    "{{\"cell\":\"{}\",\"precision\":{:.4},\"recall\":{:.4},\
                     \"mac_err\":{:.4},\"virtual_ns\":{},\"digest\":{}}}",
                    c.label,
                    c.fccd.precision(),
                    c.fccd.recall(),
                    c.mac_abs_err,
                    c.virtual_ns,
                    c.digest
                ),
                Err(p) => format!(
                    "{{\"cell_index\":{},\"panic\":\"{}\"}}",
                    p.index,
                    p.message.escape_default()
                ),
            })
            .collect()
    }
}

/// Runs the grid (full or smoke) and the paired host-time comparison.
pub fn run(smoke: bool) -> MatrixResult {
    let cfg = if smoke {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::full()
    };
    let rounds = if smoke { SMOKE_ROUNDS } else { FULL_ROUNDS };
    run_with(&cfg, rounds)
}

/// [`run`] with an explicit grid and round count (tests use tiny grids).
pub fn run_with(cfg: &MatrixConfig, rounds: usize) -> MatrixResult {
    let one = Pool::with_workers(1);
    let many = Pool::from_env();

    // Correctness first: the grid must not depend on the worker count.
    let grid = run_grid(cfg, &one);
    let grid_many = run_grid(cfg, &many);
    let digest = grid_digest(&grid);
    let identical = grid == grid_many && digest == grid_digest(&grid_many);

    // Then the measurement: 1 worker vs N, interleaved and sign-tested.
    let paired = gray_toolbox::paired_host_compare(
        rounds,
        || {
            black_box(run_grid(cfg, &one));
        },
        || {
            black_box(run_grid(cfg, &many));
        },
        OutlierPolicy::default(),
    );

    let scored: Vec<&CellResult> = grid.iter().filter_map(|c| c.as_ref().ok()).collect();
    let mean = |f: &dyn Fn(&CellResult) -> f64| -> f64 {
        if scored.is_empty() {
            0.0
        } else {
            scored.iter().map(|c| f(c)).sum::<f64>() / scored.len() as f64
        }
    };
    MatrixResult {
        cells: grid.len(),
        panicked: grid.len() - scored.len(),
        workers: many.workers(),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        grid_digest: digest,
        identical,
        precision: mean(&|c| c.fccd.precision()),
        recall: mean(&|c| c.fccd.recall()),
        mac_err: mean(&|c| c.mac_abs_err),
        total_virtual_ns: scored.iter().map(|c| c.virtual_ns).sum(),
        grid,
        paired,
    }
}

/// Registers the host-time matrix benches: the smoke grid under one
/// worker and under the environment's worker count. The full grid is
/// measured once per baseline in [`run`] — it is the measurement, not a
/// harness bench.
pub fn register(h: &mut Harness) {
    let cfg = MatrixConfig::smoke();
    let one = Pool::with_workers(1);
    h.bench_function("matrix_smoke_grid_1w", {
        let cfg = cfg.clone();
        move |b| {
            b.iter(|| black_box(run_grid(&cfg, &one)));
        }
    });
    let many = Pool::from_env();
    h.bench_function("matrix_smoke_grid_env", move |b| {
        b.iter(|| black_box(run_grid(&cfg, &many)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::scenario::matrix::WorkloadMix;
    use simos::Platform;

    fn tiny() -> MatrixConfig {
        MatrixConfig {
            platforms: vec![Platform::LinuxLike],
            aging: vec![false],
            noise_amps: vec![0.0, 0.1],
            mixes: vec![WorkloadMix::ProbeHeavy],
            fleet_sizes: vec![3],
            seed: 11,
            disks: 2,
            files_per_disk: 2,
            file_bytes: 32 << 10,
        }
    }

    #[test]
    fn tiny_matrix_is_identical_and_emits_clean_json() {
        let m = run_with(&tiny(), 2);
        assert!(m.identical, "grid must not depend on worker count");
        assert_eq!(m.cells, 2);
        assert_eq!(m.panicked, 0);
        assert!(m.total_virtual_ns > 0);
        // The baseline diff scans line-by-line with substring probes;
        // none of the other headlines' probe keys may appear here.
        let lines: Vec<String> = m
            .grid_json_lines()
            .into_iter()
            .chain([m.json_fields(), m.speedup_json_fields()])
            .collect();
        for line in &lines {
            for probe in [
                "\"serial_virtual_ns\":",
                "\"virtual_ns_per_query\":",
                "\"xl_virtual_ns\":",
                "\"fccd_precision\":",
                "\"mean_ns\":",
            ] {
                assert!(!line.contains(probe), "{line} collides with {probe}");
            }
        }
        // And our own locator keys are present exactly where expected.
        assert!(m.json_fields().contains("\"grid_digest\":"));
        assert!(m
            .speedup_json_fields()
            .contains("\"one_worker_median_ns\":"));
    }

    #[test]
    fn paired_report_is_well_formed() {
        let m = run_with(&tiny(), 3);
        assert_eq!(m.paired.rounds, 3);
        assert!(m.paired.kept >= 2);
        assert!(m.paired.speedup > 0.0);
        assert!(m.paired.baseline_median_ns > 0.0);
    }
}
