//! Inference-accuracy suite: how *right* the ICLs are, not how fast.
//!
//! The timing suites answer "did the probe engine get slower"; this one
//! answers "did the inferences get worse". It runs two deterministic
//! simos scenarios under trace capture and joins the emitted events
//! against the oracle via [`simos::score`]:
//!
//! - **FCCD**: a corpus with a known warm half is classified; every
//!   `Classified` verdict is checked against the oracle's per-file
//!   residency. On the noise-free fixed-seed machine the split is exact,
//!   so precision and recall pin at 1.0 — any drop is a real inference
//!   regression, not noise.
//! - **MAC**: `available_estimate` probes an idle machine whose free
//!   memory is known from the oracle; the `Estimated` event's value is
//!   compared against that truth as a relative error.
//!
//! The report also carries the captured probe-latency log2 histogram, so
//! the baseline file records the *shape* of probe costs alongside their
//! means.

use gray_toolbox::trace;
use graybox::fccd::Fccd;
use graybox::mac::{Mac, MacParams};
use simos::score::{score_fccd, score_mac, FccdScore};

use crate::{tiny_corpus, tiny_fccd, tiny_sim};

/// Files in the FCCD corpus (even indices are warmed by `tiny_corpus`).
const FCCD_FILES: usize = 8;
/// Bytes per corpus file — two prediction units at `tiny_fccd` geometry.
const FCCD_FILE_BYTES: u64 = 512 << 10;

/// Joined accuracy results from one traced run of both scenarios.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// FCCD confusion matrix against the oracle.
    pub fccd: FccdScore,
    /// MAC's traced availability estimate, bytes.
    pub mac_estimated_bytes: f64,
    /// Oracle free memory at probe time, bytes.
    pub mac_truth_bytes: f64,
    /// `|estimate − truth| / truth`.
    pub mac_abs_err: f64,
    /// Probe-latency log2 histogram as `bound:count` pairs.
    pub probe_latency_summary: String,
    /// Median probe-latency bucket upper bound, ns.
    pub probe_latency_p50_ns: u64,
    /// 99th-percentile probe-latency bucket upper bound, ns.
    pub probe_latency_p99_ns: u64,
    /// Probes recorded in the histogram.
    pub probes_recorded: u64,
}

impl AccuracyReport {
    /// The report as one line of baseline-file JSON fields (no braces),
    /// parseable by the runner's line-oriented `field_num`.
    pub fn json_fields(&self) -> String {
        format!(
            "\"fccd_precision\":{:.4},\"fccd_recall\":{:.4},\"fccd_scored\":{},\
             \"mac_abs_err\":{:.4},\"mac_estimated_bytes\":{:.0},\"mac_truth_bytes\":{:.0},\
             \"probe_p50_ns\":{},\"probe_p99_ns\":{},\"probes_recorded\":{},\
             \"probe_latency_hist\":\"{}\"",
            self.fccd.precision(),
            self.fccd.recall(),
            self.fccd.scored(),
            self.mac_abs_err,
            self.mac_estimated_bytes,
            self.mac_truth_bytes,
            self.probe_latency_p50_ns,
            self.probe_latency_p99_ns,
            self.probes_recorded,
            self.probe_latency_summary,
        )
    }
}

/// Runs both accuracy scenarios under trace capture and scores them.
///
/// Fully deterministic: noise-free machines, fixed-seed FCCD plans, and
/// virtual time throughout — repeated calls return identical reports.
pub fn run() -> AccuracyReport {
    let _cap = trace::capture();

    // FCCD: classify a corpus whose warm half is known, then ask the
    // oracle who was really resident.
    let mut sim = tiny_sim();
    let paths = tiny_corpus(&mut sim, FCCD_FILES, FCCD_FILE_BYTES);
    let probe_paths = paths.clone();
    sim.run_one(move |os| {
        let fccd = Fccd::with_fixed_seed(os, tiny_fccd());
        fccd.classify_files(&probe_paths)
    });
    let records = trace::drain();
    let fccd = score_fccd(&sim.oracle(), &records);

    // MAC: probe an idle machine; truth is the oracle's free-page count
    // the instant before the probe allocates anything.
    let mut sim = tiny_sim();
    let oracle = sim.oracle();
    let truth_bytes = (oracle
        .total_pages()
        .saturating_sub(oracle.resident_pages() as u64)
        * 4096) as f64;
    let ceiling = oracle.total_pages() * 4096 * 2;
    sim.run_one(move |os| {
        let mac = Mac::new(
            os,
            MacParams {
                initial_increment: 1 << 20,
                max_increment: 4 << 20,
                ..MacParams::default()
            },
        );
        mac.available_estimate(ceiling).unwrap()
    });
    let mac_records = trace::drain();
    let mac = score_mac(&mac_records, truth_bytes).expect("MAC probe emits an Estimated event");

    let metrics = trace::metrics();
    let hist = &metrics.probe_latency;
    AccuracyReport {
        fccd,
        mac_estimated_bytes: mac.estimated_bytes,
        mac_truth_bytes: mac.truth_bytes,
        mac_abs_err: mac.abs_error(),
        probe_latency_summary: hist.summary(),
        probe_latency_p50_ns: hist.percentile_bound(50.0),
        probe_latency_p99_ns: hist.percentile_bound(99.0),
        probes_recorded: hist.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_meets_the_acceptance_bar() {
        let r = run();
        assert!(
            r.fccd.precision() >= 0.95 && r.fccd.recall() >= 0.95,
            "FCCD must classify the deterministic corpus correctly: \
             precision {:.3}, recall {:.3}, scored {}, skipped {}",
            r.fccd.precision(),
            r.fccd.recall(),
            r.fccd.scored(),
            r.fccd.skipped,
        );
        assert_eq!(r.fccd.scored(), FCCD_FILES as u64);
        assert!(
            r.mac_abs_err <= 0.10,
            "MAC estimate must land within 10% of oracle free memory: \
             estimated {:.0} vs truth {:.0} ({:.1}% off)",
            r.mac_estimated_bytes,
            r.mac_truth_bytes,
            r.mac_abs_err * 100.0,
        );
        assert!(r.probes_recorded > 0, "probe histogram must be populated");
    }

    #[test]
    fn report_is_deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a.json_fields(), b.json_fields());
    }
}
