//! Fleet-scale executor benchmark: hundreds of concurrent FCCD probe
//! processes, events backend vs threads backend.
//!
//! The paper's inference-control loops only meet realistic contention
//! when *many* processes probe at once, and the thread-per-process
//! executor priced that out: every baton handoff is a condvar broadcast
//! that wakes every sibling thread, so host cost grows superlinearly
//! with fleet size. The event-driven executor turns each handoff into
//! one in-process context switch. The headline (`exec_fleet_speedup` in
//! the baseline file) records both backends' host wall-clock on an
//! identical 512-process fleet — plus the **deterministic** virtual-time
//! makespan and a bit-identity flag, which are what `--diff --strict`
//! gates.
//!
//! The backend comparison is host wall-clock, so it is measured the only
//! way this repo trusts host time: paired and interleaved through
//! [`gray_toolbox::paired_host_compare`] (threads as baseline, events as
//! candidate, A/B then B/A alternating, outlier pairs dropped whole) and
//! *decided* by the paired sign test. The verdict row
//! (`fleet_host_speedup`) records the full measurement, and the strict
//! diff fails only when the sign test finds the events backend
//! significantly slower than threads — the one outcome runner noise
//! cannot produce under paired interleaving.
//!
//! An events-only XL row (2048 processes) demonstrates the regime the
//! thread backend cannot reach affordably at all.

use gray_toolbox::bench::Harness;
use gray_toolbox::outlier::OutlierPolicy;
use gray_toolbox::stats::PairedHostReport;
use graybox::fccd::Fccd;
use graybox::os::GrayBoxOs;
use simos::scenario::{fleet_machine, spread_corpus, warm};
use simos::{exec::Workload, ExecBackend, Sim, SimProc};
use std::hint::black_box;
use std::time::Instant;

/// Processes in the headline comparison (both backends run it).
pub const FLEET_PROCS: usize = 512;
/// Processes in the events-only scale demonstration.
pub const XL_PROCS: usize = 2048;
/// Paired measurement rounds for the backend comparison. The threads
/// backend at fleet scale costs seconds per round — exactly the cost the
/// events executor removes — so the round budget stays small and the
/// sign test simply stays insignificant when that is too few to decide.
pub const FULL_ROUNDS: usize = 3;
/// Paired measurement rounds under `--smoke`.
pub const SMOKE_ROUNDS: usize = 2;
/// Significance level for the paired sign test.
pub const ALPHA: f64 = 0.05;
/// Data disks the fleet's corpus spreads over.
const FLEET_DISKS: usize = 4;
/// CPU slots of the fleet machine.
const FLEET_CPUS: u32 = 8;
/// Corpus files per disk (16 files total; every other one warm).
const FILES_PER_DISK: usize = 4;
/// Bytes per corpus file.
const FILE_BYTES: u64 = 256 << 10;

/// The `exec_fleet_speedup` headline plus the paired threads-vs-events
/// host-time comparison.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Fleet size of the two-backend comparison.
    pub procs: usize,
    /// Median host wall-clock of the events rounds (informational).
    pub events_host_ns: u64,
    /// Median host wall-clock of the threads rounds (informational).
    pub threads_host_ns: u64,
    /// Median paired `threads / events` ratio (informational; the
    /// *decided* verdict lives in the paired row).
    pub host_speedup: f64,
    /// Virtual-time makespan of the fleet — deterministic, identical in
    /// both backends, gated by `--diff --strict`.
    pub virtual_ns: u64,
    /// Whether the two backends produced bit-identical probe digests and
    /// makespans. Gated: `false` is always a hard regression.
    pub identical: bool,
    /// Fleet size of the events-only scale row.
    pub xl_procs: usize,
    /// Host wall-clock of the XL events run (informational).
    pub xl_events_host_ns: u64,
    /// Virtual-time makespan of the XL fleet (deterministic).
    pub xl_virtual_ns: u64,
    /// Paired threads-baseline vs events-candidate comparison.
    pub paired: PairedHostReport,
}

impl FleetResult {
    /// The headline's JSON object fields (one line, parseable by the
    /// runner's per-line field scanner).
    pub fn json_fields(&self) -> String {
        format!(
            "\"procs\":{},\"events_host_ns\":{},\"threads_host_ns\":{},\
             \"host_speedup\":{:.3},\"virtual_ns\":{},\"identical\":{},\
             \"xl_procs\":{},\"xl_events_host_ns\":{},\"xl_virtual_ns\":{}",
            self.procs,
            self.events_host_ns,
            self.threads_host_ns,
            self.host_speedup,
            self.virtual_ns,
            self.identical,
            self.xl_procs,
            self.xl_events_host_ns,
            self.xl_virtual_ns
        )
    }

    /// The `fleet_host_speedup` row's JSON fields: the paired measurement
    /// and its sign-test verdict in full, so the diff can re-apply the
    /// decision rule without re-running anything. `events_median_ns` is
    /// the row's locator key.
    pub fn speedup_json_fields(&self) -> String {
        let p = &self.paired;
        format!(
            "\"threads_median_ns\":{:.0},\"events_median_ns\":{:.0},\
             \"procs\":{},\"speedup\":{:.3},\"rounds\":{},\"kept\":{},\
             \"sign_less\":{},\"sign_greater\":{},\"sign_ties\":{},\
             \"p_value\":{:.6},\"faster\":{}",
            p.baseline_median_ns,
            p.candidate_median_ns,
            self.procs,
            p.speedup,
            p.rounds,
            p.kept,
            p.sign.less,
            p.sign.greater,
            p.sign.ties,
            p.sign.p_value,
            p.candidate_faster(ALPHA)
        )
    }
}

/// Boots the fleet machine with its corpus: 16 files over 4 disks, every
/// other file warm — the ground truth half the fleet should detect.
fn fleet_sim(exec: ExecBackend) -> (Sim, Vec<(String, u64)>) {
    let mut sim = fleet_machine(FLEET_DISKS, FLEET_CPUS, exec);
    let files = spread_corpus(&mut sim, FLEET_DISKS, FILES_PER_DISK, FILE_BYTES);
    let warm_set: Vec<(String, u64)> = files.iter().skip(1).step_by(2).cloned().collect();
    warm(&mut sim, &warm_set);
    (sim, files)
}

/// Runs a `procs`-process probe fleet: process *i* opens corpus file
/// `i % files` and classifies it with a fixed-seed FCCD probe. Returns
/// the per-process observation digests and the virtual makespan —
/// deterministic fingerprints of the whole schedule.
fn run_fleet(procs: usize, exec: ExecBackend) -> (Vec<u64>, u64) {
    let (mut sim, files) = fleet_sim(exec);
    let t0 = sim.now();
    let workloads: Vec<(String, Workload<'_, u64>)> = (0..procs)
        .map(|i| {
            let (path, bytes) = files[i % files.len()].clone();
            let w: Workload<'_, u64> = Box::new(move |os: &SimProc| {
                let fd = os.open(&path).unwrap();
                let fccd = Fccd::with_fixed_seed(os, crate::tiny_fccd());
                let report = fccd.probe_file(fd, bytes);
                os.close(fd).unwrap();
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for unit in &report.units {
                    for v in [unit.offset, unit.probe_time.as_nanos(), unit.probes as u64] {
                        h ^= v;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                }
                h ^ os.now().as_nanos()
            });
            (format!("probe{i}"), w)
        })
        .collect();
    let digests = sim.run(workloads);
    (digests, sim.now().since(t0).as_nanos())
}

/// Measures the headline: the 512-process fleet under both backends
/// (bit-identity and virtual time gated; host time paired, interleaved,
/// and sign-tested), plus the events-only 2048-process row.
pub fn run(smoke: bool) -> FleetResult {
    let rounds = if smoke { SMOKE_ROUNDS } else { FULL_ROUNDS };
    run_with(FLEET_PROCS, XL_PROCS, rounds)
}

/// [`run`] with explicit fleet sizes and round count (tests use tiny
/// fleets).
pub fn run_with(procs: usize, xl_procs: usize, rounds: usize) -> FleetResult {
    // Correctness first: the two backends must replay the same schedule.
    let (events_digests, events_virtual) = run_fleet(procs, ExecBackend::Events);
    let (threads_digests, threads_virtual) = run_fleet(procs, ExecBackend::Threads);
    let identical = events_digests == threads_digests && events_virtual == threads_virtual;

    // Then the measurement: threads (baseline) vs events (candidate),
    // interleaved and sign-tested.
    let paired = gray_toolbox::paired_host_compare(
        rounds,
        || {
            black_box(run_fleet(procs, ExecBackend::Threads));
        },
        || {
            black_box(run_fleet(procs, ExecBackend::Events));
        },
        OutlierPolicy::default(),
    );

    let xl_start = Instant::now();
    let (_, xl_virtual) = run_fleet(xl_procs, ExecBackend::Events);
    let xl_host_ns = xl_start.elapsed().as_nanos() as u64;
    FleetResult {
        procs,
        events_host_ns: paired.candidate_median_ns as u64,
        threads_host_ns: paired.baseline_median_ns as u64,
        host_speedup: paired.speedup,
        virtual_ns: events_virtual,
        identical,
        xl_procs,
        xl_events_host_ns: xl_host_ns,
        xl_virtual_ns: xl_virtual,
        paired,
    }
}

/// Registers the host-time fleet benches (events backend only — the
/// harness re-runs its benches many times, and the threads backend at
/// fleet scale is exactly what this PR makes unnecessary; it is measured
/// once per baseline in [`run`]).
pub fn register(h: &mut Harness) {
    h.bench_function("exec_fleet_512_events", |b| {
        b.iter(|| black_box(run_fleet(FLEET_PROCS, ExecBackend::Events)));
    });
    h.bench_function("exec_fleet_64_events", |b| {
        b.iter(|| black_box(run_fleet(64, ExecBackend::Events)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_is_bit_identical_across_backends() {
        // The full 512-process identity is recorded (and gated) in the
        // baseline headline; pin the same property at test-budget scale.
        let events = run_fleet(64, ExecBackend::Events);
        let threads = run_fleet(64, ExecBackend::Threads);
        assert_eq!(events, threads, "fleet digests/makespan diverge");
        assert!(events.1 > 0, "fleet must consume virtual time");
    }

    #[test]
    fn paired_rows_are_well_formed_and_collision_free() {
        let f = run_with(16, 32, 2);
        assert!(f.identical, "backends diverged at test scale");
        assert_eq!(f.paired.rounds, 2);
        assert!(f.paired.kept >= 1);
        assert!(f.paired.speedup > 0.0);
        assert!(f.threads_host_ns > 0 && f.events_host_ns > 0);
        // The baseline diff scans line-by-line with substring probes;
        // the two fleet rows must carry their own locator keys and no
        // other headline's.
        assert!(f.json_fields().contains("\"xl_virtual_ns\":"));
        assert!(f.speedup_json_fields().contains("\"events_median_ns\":"));
        for line in [f.json_fields(), f.speedup_json_fields()] {
            for probe in [
                "\"serial_virtual_ns\":",
                "\"virtual_ns_per_query\":",
                "\"grid_digest\":",
                "\"one_worker_median_ns\":",
                "\"covert_digest\":",
                "\"mean_ns\":",
            ] {
                assert!(!line.contains(probe), "{line} collides with {probe}");
            }
        }
    }
}
