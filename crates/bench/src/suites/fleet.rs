//! Fleet-scale executor benchmark: hundreds of concurrent FCCD probe
//! processes, events backend vs threads backend.
//!
//! The paper's inference-control loops only meet realistic contention
//! when *many* processes probe at once, and the thread-per-process
//! executor priced that out: every baton handoff is a condvar broadcast
//! that wakes every sibling thread, so host cost grows superlinearly
//! with fleet size. The event-driven executor turns each handoff into
//! one in-process context switch. The headline (`exec_fleet_speedup` in
//! the baseline file) records both backends' host wall-clock on an
//! identical 512-process fleet — plus the **deterministic** virtual-time
//! makespan and a bit-identity flag, which are what `--diff --strict`
//! gates (host time stays informational, per the repo's policy).
//!
//! An events-only XL row (2048 processes) demonstrates the regime the
//! thread backend cannot reach affordably at all.

use gray_toolbox::bench::Harness;
use graybox::fccd::Fccd;
use graybox::os::GrayBoxOs;
use simos::scenario::{fleet_machine, spread_corpus, warm};
use simos::{exec::Workload, ExecBackend, Sim, SimProc};
use std::hint::black_box;
use std::time::Instant;

/// Processes in the headline comparison (both backends run it).
pub const FLEET_PROCS: usize = 512;
/// Processes in the events-only scale demonstration.
pub const XL_PROCS: usize = 2048;
/// Data disks the fleet's corpus spreads over.
const FLEET_DISKS: usize = 4;
/// CPU slots of the fleet machine.
const FLEET_CPUS: u32 = 8;
/// Corpus files per disk (16 files total; every other one warm).
const FILES_PER_DISK: usize = 4;
/// Bytes per corpus file.
const FILE_BYTES: u64 = 256 << 10;

/// The `exec_fleet_speedup` headline.
#[derive(Debug, Clone, Copy)]
pub struct FleetResult {
    /// Fleet size of the two-backend comparison.
    pub procs: usize,
    /// Host wall-clock of the events run (informational).
    pub events_host_ns: u64,
    /// Host wall-clock of the threads run (informational).
    pub threads_host_ns: u64,
    /// `threads_host_ns / events_host_ns` (informational).
    pub host_speedup: f64,
    /// Virtual-time makespan of the fleet — deterministic, identical in
    /// both backends, gated by `--diff --strict`.
    pub virtual_ns: u64,
    /// Whether the two backends produced bit-identical probe digests and
    /// makespans. Gated: `false` is always a hard regression.
    pub identical: bool,
    /// Fleet size of the events-only scale row.
    pub xl_procs: usize,
    /// Host wall-clock of the XL events run (informational).
    pub xl_events_host_ns: u64,
    /// Virtual-time makespan of the XL fleet (deterministic).
    pub xl_virtual_ns: u64,
}

impl FleetResult {
    /// The headline's JSON object fields (one line, parseable by the
    /// runner's per-line field scanner).
    pub fn json_fields(&self) -> String {
        format!(
            "\"procs\":{},\"events_host_ns\":{},\"threads_host_ns\":{},\
             \"host_speedup\":{:.3},\"virtual_ns\":{},\"identical\":{},\
             \"xl_procs\":{},\"xl_events_host_ns\":{},\"xl_virtual_ns\":{}",
            self.procs,
            self.events_host_ns,
            self.threads_host_ns,
            self.host_speedup,
            self.virtual_ns,
            self.identical,
            self.xl_procs,
            self.xl_events_host_ns,
            self.xl_virtual_ns
        )
    }
}

/// Boots the fleet machine with its corpus: 16 files over 4 disks, every
/// other file warm — the ground truth half the fleet should detect.
fn fleet_sim(exec: ExecBackend) -> (Sim, Vec<(String, u64)>) {
    let mut sim = fleet_machine(FLEET_DISKS, FLEET_CPUS, exec);
    let files = spread_corpus(&mut sim, FLEET_DISKS, FILES_PER_DISK, FILE_BYTES);
    let warm_set: Vec<(String, u64)> = files.iter().skip(1).step_by(2).cloned().collect();
    warm(&mut sim, &warm_set);
    (sim, files)
}

/// Runs a `procs`-process probe fleet: process *i* opens corpus file
/// `i % files` and classifies it with a fixed-seed FCCD probe. Returns
/// the per-process observation digests and the virtual makespan —
/// deterministic fingerprints of the whole schedule.
fn run_fleet(procs: usize, exec: ExecBackend) -> (Vec<u64>, u64) {
    let (mut sim, files) = fleet_sim(exec);
    let t0 = sim.now();
    let workloads: Vec<(String, Workload<'_, u64>)> = (0..procs)
        .map(|i| {
            let (path, bytes) = files[i % files.len()].clone();
            let w: Workload<'_, u64> = Box::new(move |os: &SimProc| {
                let fd = os.open(&path).unwrap();
                let fccd = Fccd::with_fixed_seed(os, crate::tiny_fccd());
                let report = fccd.probe_file(fd, bytes);
                os.close(fd).unwrap();
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for unit in &report.units {
                    for v in [unit.offset, unit.probe_time.as_nanos(), unit.probes as u64] {
                        h ^= v;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                }
                h ^ os.now().as_nanos()
            });
            (format!("probe{i}"), w)
        })
        .collect();
    let digests = sim.run(workloads);
    (digests, sim.now().since(t0).as_nanos())
}

/// Measures the headline: the 512-process fleet under both backends
/// (host time informational, virtual time + bit-identity gated), plus
/// the events-only 2048-process row.
pub fn run() -> FleetResult {
    let host = |procs: usize, exec: ExecBackend| {
        let start = Instant::now();
        let out = run_fleet(procs, exec);
        (out, start.elapsed().as_nanos() as u64)
    };
    let ((events_digests, events_virtual), events_host_ns) = host(FLEET_PROCS, ExecBackend::Events);
    let ((threads_digests, threads_virtual), threads_host_ns) =
        host(FLEET_PROCS, ExecBackend::Threads);
    let ((_, xl_virtual), xl_host_ns) = host(XL_PROCS, ExecBackend::Events);
    FleetResult {
        procs: FLEET_PROCS,
        events_host_ns,
        threads_host_ns,
        host_speedup: threads_host_ns as f64 / events_host_ns.max(1) as f64,
        virtual_ns: events_virtual,
        identical: events_digests == threads_digests && events_virtual == threads_virtual,
        xl_procs: XL_PROCS,
        xl_events_host_ns: xl_host_ns,
        xl_virtual_ns: xl_virtual,
    }
}

/// Registers the host-time fleet benches (events backend only — the
/// harness re-runs its benches many times, and the threads backend at
/// fleet scale is exactly what this PR makes unnecessary; it is measured
/// once per baseline in [`run`]).
pub fn register(h: &mut Harness) {
    h.bench_function("exec_fleet_512_events", |b| {
        b.iter(|| black_box(run_fleet(FLEET_PROCS, ExecBackend::Events)));
    });
    h.bench_function("exec_fleet_64_events", |b| {
        b.iter(|| black_box(run_fleet(64, ExecBackend::Events)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_is_bit_identical_across_backends() {
        // The full 512-process identity is recorded (and gated) in the
        // baseline headline; pin the same property at test-budget scale.
        let events = run_fleet(64, ExecBackend::Events);
        let threads = run_fleet(64, ExecBackend::Threads);
        assert_eq!(events, threads, "fleet digests/makespan diverge");
        assert!(events.1 > 0, "fleet must consume virtual time");
    }
}
