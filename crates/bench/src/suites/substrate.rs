//! Benchmarks for the simulated substrate: how fast does the simulator
//! itself simulate? (Page-granularity experiments run millions of these.)

use crate::tiny_sim;
use gray_toolbox::bench::Harness;
use graybox::os::GrayBoxOs;
use std::hint::black_box;

/// Registers the substrate benchmarks.
pub fn register(h: &mut Harness) {
    h.bench_function("disk_service_time_random", |b| {
        let mut disk = simos::disk::Disk::new(simos::DiskParams::default(), 4096);
        let mut now = gray_toolbox::Nanos::ZERO;
        let mut block = 1u64;
        b.iter(|| {
            block = (block.wrapping_mul(6364136223846793005).wrapping_add(1)) % disk.blocks();
            now = disk.transfer(now, block, 1);
            black_box(now)
        })
    });

    h.bench_function("cache_insert_lookup", |b| {
        let mut cache = simos::cache::PageCache::new(simos::CacheArch::Unified, 4096, 4096);
        let mut page = 0u64;
        b.iter(|| {
            let id = simos::cache::PageId {
                owner: simos::cache::Owner::File { dev: 0, ino: 42 },
                page: page % 8192,
            };
            page += 1;
            if !cache.lookup_touch(id) {
                black_box(cache.insert(id, false));
            }
        })
    });

    h.bench_function("sim_sequential_read_1mb", |b| {
        let mut sim = tiny_sim();
        sim.run_one(|os| {
            let fd = os.create("/seq").unwrap();
            os.write_fill(fd, 0, 8 << 20).unwrap();
            os.close(fd).unwrap();
        });
        let mut off = 0u64;
        b.iter(|| {
            let o = off % (7 << 20);
            off += 1 << 20;
            sim.run_one(move |os| {
                let fd = os.open("/seq").unwrap();
                let n = os.read_discard(fd, o, 1 << 20).unwrap();
                os.close(fd).unwrap();
                black_box(n)
            })
        })
    });

    h.bench_function("sim_mem_touch_resident", |b| {
        let mut sim = tiny_sim();
        b.iter(|| {
            sim.run_one(|os| {
                let r = os.mem_alloc(64 * 4096).unwrap();
                for p in 0..64 {
                    os.mem_touch_write(r, p).unwrap();
                }
                os.mem_free(r).unwrap();
            })
        })
    });

    h.bench_function("fs_create_unlink", |b| {
        let mut sim = tiny_sim();
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/churn{i}");
            i += 1;
            sim.run_one(move |os| {
                let fd = os.create(&path).unwrap();
                os.close(fd).unwrap();
                os.unlink(&path).unwrap();
            })
        })
    });
}
