//! Daemon suite: the multi-tenant gbd under sustained query load.
//!
//! The headline is [`run`]: two dozen simulated clients drive 10k+
//! FCCD/MAC/FLDC queries through one shared daemon over many serve
//! ticks, with periodic cache churn forcing the churn-aware staleness
//! policy to invalidate and re-infer. Everything in the report is
//! **virtual-time deterministic** — hit rate, shed/admission counts,
//! re-inference counts, and the simulated clock total are exactly
//! reproducible run to run, so `--diff --strict` can gate them the way
//! it gates the accuracy and scheduler headlines. `register` adds small
//! host-time entries (cache-hit service cost, one cold inference) so
//! the suite also lands in the harness baseline.

use gbd::{Gbd, GbdConfig, Query, Reply};
use gray_sched::SchedConfig;
use gray_toolbox::bench::Harness;
use gray_toolbox::GrayDuration;
use graybox::fccd::FccdParams;
use simos::scenario;
use simos::Sim;
use std::hint::black_box;

/// Simulated clients sharing the daemon (ISSUE 6 floor: ≥ 24).
pub const TENANTS: usize = 24;
/// Serve ticks in the headline run.
pub const TICKS: usize = 42;
/// Queries each tenant submits per tick: 24 × 42 × 10 = 10 080 ≥ 10k.
pub const QUERIES_PER_TICK: usize = 10;
/// Ticks between churn events (page-cache contents flip behind the
/// daemon, so cached classifications become stale mid-run).
const CHURN_EVERY: usize = 14;
/// Disks (and scheduler workers) on the daemon machine.
const DISKS: usize = 4;
/// Corpus files per disk.
const FILES_PER_DISK: usize = 3;
/// Bytes per corpus file — two prediction units at the small geometry.
const FILE_BYTES: u64 = 512 << 10;

/// Deterministic results of one headline daemon run.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Registered tenants.
    pub tenants: usize,
    /// Queries served (answered or shed) across the whole run.
    pub queries: u64,
    /// Queries answered straight from the inference cache.
    pub hits: u64,
    /// Cache hit rate, `hits / queries`.
    pub hit_rate: f64,
    /// Probe-needing queries admitted past the AIMD budget.
    pub admitted: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Identical in-tick misses folded into one execution.
    pub coalesced: u64,
    /// Entries evicted on churn contradiction.
    pub invalidated: u64,
    /// Entries aged out at lookup (virtual-TTL expiry).
    pub expired: u64,
    /// Entries evicted by the cache capacity bound.
    pub capacity_evictions: u64,
    /// Churned entries re-inferred within budget.
    pub reinfers: u64,
    /// Scheduler waves dispatched daemon-wide.
    pub waves: u64,
    /// Final virtual clock — total simulated time for the whole run.
    pub virtual_total_ns: u64,
    /// Virtual time per query — the daemon's latency proxy. Probe cost
    /// amortizes across tenants, so this sits far below one inference.
    pub virtual_ns_per_query: f64,
}

impl DaemonReport {
    /// The report as one line of baseline-file JSON fields (no braces),
    /// parseable by the runner's line-oriented `field_num`.
    pub fn json_fields(&self) -> String {
        format!(
            "\"tenants\":{},\"queries\":{},\"hits\":{},\"hit_rate\":{:.4},\
             \"admitted\":{},\"shed\":{},\"coalesced\":{},\"invalidated\":{},\
             \"expired\":{},\"capacity_evictions\":{},\
             \"reinfers\":{},\"waves\":{},\"virtual_total_ns\":{},\
             \"virtual_ns_per_query\":{:.1}",
            self.tenants,
            self.queries,
            self.hits,
            self.hit_rate,
            self.admitted,
            self.shed,
            self.coalesced,
            self.invalidated,
            self.expired,
            self.capacity_evictions,
            self.reinfers,
            self.waves,
            self.virtual_total_ns,
            self.virtual_ns_per_query,
        )
    }
}

/// Splitmix-style step for per-tenant query choice — deterministic and
/// seeded from the tenant index, never from wall-clock entropy.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The finite query-shape pool every tenant draws from. A small pool is
/// the point: repeats are what an inference cache amortizes.
fn query_pool(files: &[(String, u64)]) -> Vec<Query> {
    let mut pool: Vec<Query> = files
        .iter()
        .map(|f| Query::FccdClassify {
            files: vec![f.clone()],
        })
        .collect();
    // One per-disk sweep (multi-file plans pool into shared waves).
    for d in 0..DISKS {
        pool.push(Query::FccdClassify {
            files: files
                .iter()
                .skip(d * FILES_PER_DISK)
                .take(FILES_PER_DISK)
                .cloned()
                .collect(),
        });
    }
    pool.push(Query::MacAvailable { ceiling: 8 << 20 });
    pool.push(Query::FldcOrder { dir: "/".into() });
    pool
}

/// Builds the daemon machine, corpus, and a daemon with `tenants`
/// registered clients.
fn build(tenants: usize) -> (Sim, Vec<(String, u64)>, Gbd, Vec<gbd::GbdClient>) {
    let mut sim = scenario::daemon_machine(DISKS, DISKS);
    let files = scenario::spread_corpus(&mut sim, DISKS, FILES_PER_DISK, FILE_BYTES);
    let warm: Vec<_> = files.iter().step_by(2).cloned().collect();
    scenario::warm(&mut sim, &warm);

    let cfg = GbdConfig {
        // Long virtual TTL: staleness in this run comes from churn
        // contradictions, not expiry, so the re-inference counts are
        // attributable to the churn-aware policy.
        cache_ttl: GrayDuration::from_secs(3600),
        fccd: FccdParams {
            access_unit: 1 << 20,
            prediction_unit: 256 << 10,
            ..FccdParams::default()
        },
        sched: SchedConfig {
            concurrency: DISKS,
            sub_batch: 1,
            ..SchedConfig::default()
        },
        max_tenants: tenants.max(1),
        ..GbdConfig::default()
    };
    let policy = cfg.churn_policy();
    let mut gbd = Gbd::new(cfg, Box::new(policy));
    let clients: Vec<_> = (0..tenants)
        .map(|i| {
            gbd.register_tenant(&format!("tenant{i:02}"))
                .expect("within max_tenants")
        })
        .collect();
    (sim, files, gbd, clients)
}

/// Drives the full headline load and folds the daemon's counters into a
/// [`DaemonReport`]. Deterministic: fixed seeds, noise-free machine,
/// virtual time only.
pub fn run() -> DaemonReport {
    let (mut sim, files, mut gbd, clients) = build(TENANTS);
    let pool = query_pool(&files);
    let mut rng: Vec<u64> = (0..TENANTS).map(|i| 0x6762_6400 + i as u64).collect();
    let mut churns = 0usize;

    for tick in 0..TICKS {
        if tick > 0 && tick % CHURN_EVERY == 0 {
            // Flip the warm half behind the daemon's back, then have
            // tenant 0 scout a novel prefix query: its fresh verdicts
            // overlap the stale cached singles and trigger the
            // churn-aware invalidation path.
            churns += 1;
            let keep: Vec<_> = files.iter().skip(churns % 2).step_by(2).cloned().collect();
            scenario::churn(&mut sim, &keep);
            clients[0].submit(Query::FccdClassify {
                files: files[..(2 + churns).min(files.len())].to_vec(),
            });
        }
        let mut tickets = Vec::with_capacity(TENANTS * QUERIES_PER_TICK);
        for (t, client) in clients.iter().enumerate() {
            for _ in 0..QUERIES_PER_TICK {
                let q = pool[(next(&mut rng[t]) as usize) % pool.len()].clone();
                tickets.push((t, client.submit(q)));
            }
        }
        gbd.serve(&mut sim);
        for (t, ticket) in tickets {
            let resp = clients[t].take(ticket).expect("served this tick");
            debug_assert!(!matches!(resp.reply, Reply::Failed(_)), "{:?}", resp.reply);
        }
    }

    let s = gbd.stats();
    let virtual_total_ns = sim.now().0;
    DaemonReport {
        tenants: TENANTS,
        queries: s.queries,
        hits: s.hits,
        hit_rate: s.hits as f64 / s.queries.max(1) as f64,
        admitted: s.admitted,
        shed: s.shed,
        coalesced: s.coalesced,
        invalidated: s.invalidated,
        expired: s.expired,
        capacity_evictions: s.capacity_evictions,
        reinfers: s.reinfers,
        waves: s.waves,
        virtual_total_ns,
        virtual_ns_per_query: virtual_total_ns as f64 / s.queries.max(1) as f64,
    }
}

/// Registers the daemon's host-time benchmarks: the cost of serving a
/// fully-cached tick and of one cold shared-scheduler inference.
pub fn register(h: &mut Harness) {
    h.bench_function("gbd_tick_all_cache_hits", |b| {
        let (mut sim, files, mut gbd, clients) = build(4);
        let q = Query::FccdClassify {
            files: vec![files[0].clone()],
        };
        // Prime the entry so every measured tick is pure cache service.
        clients[0].submit(q.clone());
        gbd.serve(&mut sim);
        b.iter(|| {
            let tickets: Vec<_> = clients.iter().map(|c| c.submit(q.clone())).collect();
            gbd.serve(&mut sim);
            for (c, t) in clients.iter().zip(tickets) {
                black_box(c.take(t).expect("cached reply"));
            }
        });
    });
    h.bench_function("gbd_cold_inference", |b| {
        b.iter(|| {
            let (mut sim, files, mut gbd, clients) = build(1);
            let t = clients[0].submit(Query::FccdClassify {
                files: files[..2].to_vec(),
            });
            gbd.serve(&mut sim);
            black_box(clients[0].take(t).expect("served"))
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_run_meets_the_acceptance_bar() {
        let r = run();
        assert!(r.tenants >= 24, "ISSUE 6 floor: ≥ 24 clients");
        assert!(
            r.queries >= 10_000,
            "ISSUE 6 floor: ≥ 10k queries, got {}",
            r.queries
        );
        assert!(
            r.hit_rate > 0.5,
            "a finite query pool must amortize: hit rate {:.3}",
            r.hit_rate
        );
        assert!(r.admitted > 0, "some probe work must be admitted");
        assert!(
            r.reinfers > 0,
            "churn events must trigger churn-aware re-inference"
        );
        assert!(r.waves > 0 && r.virtual_total_ns > 0);
    }

    #[test]
    fn headline_run_is_deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a.json_fields(), b.json_fields());
    }
}
