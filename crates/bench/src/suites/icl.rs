//! End-to-end ICL operation benchmarks on a small simulated machine,
//! including the scalar-vs-batched probe engine comparison.

use crate::{tiny_corpus, tiny_fccd, tiny_sim};
use gray_toolbox::bench::Harness;
use graybox::fccd::Fccd;
use graybox::fldc::Fldc;
use graybox::mac::{Mac, MacParams};
use graybox::os::{GrayBoxOs, ProbeSpec};
use simos::Sim;
use std::hint::black_box;

/// Bench name of the scalar full-file probe (the runner reads its mean
/// to report the batching speedup).
pub const PROBE_SCALAR: &str = "fccd_probe_file_scalar";
/// Bench name of the batched full-file probe.
pub const PROBE_BATCHED: &str = "fccd_probe_file_batched";

/// Pages in the probe-engine comparison file.
const PROBE_PAGES: u64 = 256;
/// Probes per measured pass (a full-file FCCD probe plan's worth).
const PROBE_COUNT: u64 = 512;

/// The same deterministic offsets for both probe paths — what an FCCD
/// full-file probe issues, minus the RNG.
fn probe_specs() -> Vec<ProbeSpec> {
    (0..PROBE_COUNT)
        .map(|i| ProbeSpec {
            offset: ((i * 37) % PROBE_PAGES) * 4096,
        })
        .collect()
}

/// A tiny sim with one fully warm file to probe.
fn probe_sim() -> Sim {
    let mut sim = tiny_sim();
    sim.run_one(|os| {
        let fd = os.create("/probe").unwrap();
        os.write_fill(fd, 0, PROBE_PAGES * 4096).unwrap();
        os.read_discard(fd, 0, PROBE_PAGES * 4096).unwrap();
        os.close(fd).unwrap();
    });
    sim
}

/// Registers the ICL benchmarks.
pub fn register(h: &mut Harness) {
    h.bench_function("fccd_order_16_files", |b| {
        let mut sim = tiny_sim();
        let paths = tiny_corpus(&mut sim, 16, 256 << 10);
        b.iter(|| {
            let paths = paths.clone();
            sim.run_one(move |os| {
                let fccd = Fccd::new(os, tiny_fccd());
                black_box(fccd.order_files(&paths).len())
            })
        })
    });

    h.bench_function("fldc_order_directory_64", |b| {
        let mut sim = tiny_sim();
        let _ = tiny_corpus(&mut sim, 64, 8 << 10);
        b.iter(|| {
            sim.run_one(|os| {
                let fldc = Fldc::new(os);
                black_box(fldc.order_directory("/bench").unwrap().len())
            })
        })
    });

    h.bench_function("mac_available_estimate", |b| {
        let mut sim = tiny_sim();
        b.iter(|| {
            sim.run_one(|os| {
                let mac = Mac::new(
                    os,
                    MacParams {
                        initial_increment: 256 << 10,
                        max_increment: 4 << 20,
                        ..MacParams::default()
                    },
                );
                black_box(mac.available_estimate(16 << 20).unwrap())
            })
        })
    });

    // The probe-engine comparison: identical probe sets through the
    // scalar per-probe path (three kernel entries per probe: now, read,
    // now — each its own lock acquisition and scheduler pass) and through
    // one vectored `probe_batch` call. Host time only; the simulated
    // virtual-time answer is identical by construction.
    h.bench_function(PROBE_SCALAR, |b| {
        let mut sim = probe_sim();
        b.iter(|| {
            let specs = probe_specs();
            sim.run_one(move |os| {
                let fd = os.open("/probe").unwrap();
                let mut acc = 0u64;
                for spec in &specs {
                    let (res, elapsed) = os.timed(|o| o.read_byte(fd, spec.offset));
                    res.unwrap();
                    acc += elapsed.as_nanos();
                }
                os.close(fd).unwrap();
                black_box(acc)
            })
        })
    });

    h.bench_function(PROBE_BATCHED, |b| {
        let mut sim = probe_sim();
        b.iter(|| {
            let specs = probe_specs();
            sim.run_one(move |os| {
                let fd = os.open("/probe").unwrap();
                let samples = os.probe_batch(fd, &specs);
                os.close(fd).unwrap();
                black_box(samples.iter().map(|s| s.elapsed.as_nanos()).sum::<u64>())
            })
        })
    });
}
