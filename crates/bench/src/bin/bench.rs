//! The benchmark runner: sweeps every suite and persists a baseline file.
//!
//! ```text
//! cargo run --release -p gray-bench --bin bench              # full run → BENCH_PR10.json
//! cargo run --release -p gray-bench --bin bench -- --smoke   # 1 warmup + 1 iter each → BENCH_SMOKE.json
//! cargo run --release -p gray-bench --bin bench -- fccd      # substring filter, as with cargo bench
//! cargo run --release -p gray-bench --bin bench -- --diff BENCH_PR7.json BENCH_PR8.json
//! cargo run --release -p gray-bench --bin bench -- --diff --strict old.json new.json  # exit 1 on regression
//! ```
//!
//! The baseline file holds one entry per suite with the per-benchmark
//! summaries (mean/stddev/min and friends), plus two headline numbers:
//! the scalar-vs-batched speedup of the FCCD full-file probe (the
//! vectored probe engine) and the serial-vs-concurrent virtual-time
//! speedup of multi-file FCCD probing through the scheduler. Smoke runs
//! write to a separate file so a CI invocation in a checkout can never
//! clobber a committed baseline with single-iteration noise.
//!
//! `--diff old new` compares two baseline files (no benches are run):
//! per-benchmark host-time means, the virtual-time scheduler headline,
//! and the inference-accuracy fields. Host-time comparisons are always
//! informational — committed baselines are recorded under uncontrolled
//! load (back-to-back runs of one binary swing 2x on a shared runner),
//! so a host-time ratio is not evidence of a code regression. The
//! *deterministic* fields — accuracy precision/recall/error and the
//! virtual-time speedup — are exactly reproducible, so a move there is a
//! real regression: `--strict` makes those exit non-zero (the enforcing
//! CI step). Without `--strict` the diff always exits 0.

use gray_bench::suites;
use gray_toolbox::bench::Harness;
use std::time::Duration;

/// Baseline file for full runs (committed at the repo root).
const BASELINE: &str = "BENCH_PR10.json";
/// Output for smoke runs (existence proof only, never committed).
const SMOKE_OUT: &str = "BENCH_SMOKE.json";
/// Mean-time ratio above which `--diff` flags a benchmark as regressed.
const REGRESSION: f64 = 1.25;
/// Absolute drop in precision/recall (or rise in MAC error) that counts
/// as an accuracy regression. Accuracy is deterministic (virtual time, no
/// noise), so the tolerance exists only to forgive rounding in the
/// baseline file's 4-decimal fields.
const ACCURACY_SLACK: f64 = 0.02;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    if args.iter().any(|a| a == "--diff") {
        let paths: Vec<&String> = args
            .iter()
            .filter(|a| *a != "--diff" && *a != "--strict")
            .collect();
        match (paths.first(), paths.get(1)) {
            (Some(old), Some(new)) => {
                let regressed = diff(old, new);
                std::process::exit(if strict { regressed } else { 0 });
            }
            _ => {
                eprintln!("usage: bench --diff [--strict] <old.json> <new.json>");
                std::process::exit(2);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    let mut sections = Vec::new();
    let mut scalar_mean = None;
    let mut batched_mean = None;

    for (target, register) in suites::ALL {
        println!("=== {target} ===");
        // A fresh harness per suite: per-suite budgets, and the figures
        // suite's group prefix cannot leak into the next suite.
        let mut h = Harness::new()
            .warm_up_time(Duration::from_millis(250))
            .measurement_time(Duration::from_secs(1));
        register(&mut h);
        for r in h.results() {
            if r.name == suites::icl::PROBE_SCALAR {
                scalar_mean = Some(r.mean_ns);
            }
            if r.name == suites::icl::PROBE_BATCHED {
                batched_mean = Some(r.mean_ns);
            }
        }
        let entries: Vec<String> = h
            .results()
            .iter()
            .map(|r| format!("    {}", r.json()))
            .collect();
        sections.push(format!("  \"{target}\": [\n{}\n  ]", entries.join(",\n")));
    }

    let mut headlines = String::new();
    if let (Some(s), Some(b)) = (scalar_mean, batched_mean) {
        if b > 0.0 {
            let x = s / b;
            println!("\nfccd probe engine: scalar {s:.0} ns vs batched {b:.0} ns → {x:.2}x");
            headlines.push_str(&format!(
                ",\n  \"fccd_probe_speedup\": {{\"scalar_mean_ns\":{s:.1},\
                 \"batched_mean_ns\":{b:.1},\"speedup\":{x:.3}}}"
            ));
        }
    }
    // The scheduler headline is virtual-time, so it is exact and cheap:
    // compute it even under --smoke (where the host-time harness runs a
    // single iteration and its entries are noise).
    let sched = suites::sched::fccd_multifile_speedup();
    println!(
        "sched fccd fleet: serial {} ns vs concurrent {} ns (virtual) → {:.2}x",
        sched.serial_ns, sched.concurrent_ns, sched.speedup
    );
    headlines.push_str(&format!(
        ",\n  \"sched_fccd_speedup\": {{\"serial_virtual_ns\":{},\
         \"concurrent_virtual_ns\":{},\"files\":{},\"speedup\":{:.3}}}",
        sched.serial_ns,
        sched.concurrent_ns,
        suites::sched::FLEET_FILES,
        sched.speedup
    ));
    // Inference accuracy is virtual-time and deterministic, like the
    // scheduler headline: exact even under --smoke.
    let acc = suites::accuracy::run();
    println!(
        "inference accuracy: fccd precision {:.3} recall {:.3} ({} files), \
         mac estimate off by {:.1}%",
        acc.fccd.precision(),
        acc.fccd.recall(),
        acc.fccd.scored(),
        acc.mac_abs_err * 100.0
    );
    headlines.push_str(&format!(",\n  \"accuracy\": {{{}}}", acc.json_fields()));
    // The daemon headline is virtual-time deterministic too: 24 tenants,
    // 10k+ queries through one shared daemon, exact even under --smoke.
    let d = suites::daemon::run();
    println!(
        "gbd daemon: {} tenants, {} queries, hit rate {:.3}, {} admitted / {} shed, \
         {} reinfers, {:.0} virtual ns/query",
        d.tenants, d.queries, d.hit_rate, d.admitted, d.shed, d.reinfers, d.virtual_ns_per_query
    );
    headlines.push_str(&format!(",\n  \"gbd\": {{{}}}", d.json_fields()));
    // The executor fleet headline: a 512-process FCCD fleet under both
    // backends. The deterministic virtual makespan and the bit-identity
    // flag are what `--diff --strict` gates; the backend host-time
    // comparison is measured paired and interleaved (threads baseline,
    // events candidate) and decided by the paired sign test, recorded in
    // its own verdict row. The threads rounds at fleet scale are
    // precisely the cost this headline exists to document, so the round
    // budget is small and never goes through the iterating harness.
    let f = suites::fleet::run(smoke);
    println!(
        "exec fleet: {} procs, events {:.1} ms vs threads {:.1} ms (host, paired medians) \
         → {:.2}x (sign test: {} faster / {} slower, p={:.4}), identical {}, \
         makespan {} virtual ns; xl {} procs events-only {:.1} ms",
        f.procs,
        f.events_host_ns as f64 / 1e6,
        f.threads_host_ns as f64 / 1e6,
        f.host_speedup,
        f.paired.sign.less,
        f.paired.sign.greater,
        f.paired.sign.p_value,
        f.identical,
        f.virtual_ns,
        f.xl_procs,
        f.xl_events_host_ns as f64 / 1e6
    );
    headlines.push_str(&format!(
        ",\n  \"exec_fleet_speedup\": {{{}}}",
        f.json_fields()
    ));
    headlines.push_str(&format!(
        ",\n  \"fleet_host_speedup\": {{{}}}",
        f.speedup_json_fields()
    ));
    // The scenario matrix: the scored grid is virtual-time deterministic
    // (bit-identical for any worker count — gated), while the 1-vs-N
    // worker host time is measured paired and decided by the sign test.
    // Under --smoke the grid shrinks but the same machinery runs, so CI
    // exercises the gate end to end.
    let m = suites::matrix::run(smoke);
    println!(
        "scenario matrix: {} cells ({} panicked), identical {}, precision {:.3} \
         recall {:.3} mac_err {:.3}; {} workers on {} cpus → {:.2}x \
         (paired sign test: {} faster / {} slower, p={:.4})",
        m.cells,
        m.panicked,
        m.identical,
        m.precision,
        m.recall,
        m.mac_err,
        m.workers,
        m.host_cpus,
        m.paired.speedup,
        m.paired.sign.less,
        m.paired.sign.greater,
        m.paired.sign.p_value
    );
    headlines.push_str(&format!(",\n  \"matrix\": {{{}}}", m.json_fields()));
    headlines.push_str(&format!(
        ",\n  \"matrix_host_speedup\": {{{}}}",
        m.speedup_json_fields()
    ));
    let grid_lines: Vec<String> = m
        .grid_json_lines()
        .into_iter()
        .map(|l| format!("    {l}"))
        .collect();
    sections.push(format!(
        "  \"matrix_grid\": [\n{}\n  ]",
        grid_lines.join(",\n")
    ));
    // The covert-channel grid: every cell is virtual-time deterministic
    // and worker-count bit-identical (gated), and the per-cell capacity
    // and BER lines let the strict diff re-check the adversarial claims
    // (quiet channels error-free, defenders degrade capacity) offline.
    let cv = suites::covert::run(smoke);
    println!(
        "covert channels: {} cells ({} panicked), identical {}, quiet capacity \
         {:.1} bps over {} error(s), {} late wakeup(s)",
        cv.cells,
        cv.panicked,
        cv.identical,
        cv.quiet_capacity_bps,
        cv.quiet_errors,
        cv.late_wakeups
    );
    headlines.push_str(&format!(",\n  \"covert\": {{{}}}", cv.json_fields()));
    let covert_lines: Vec<String> = cv
        .grid_json_lines()
        .into_iter()
        .map(|l| format!("    {l}"))
        .collect();
    sections.push(format!(
        "  \"covert_grid\": [\n{}\n  ]",
        covert_lines.join(",\n")
    ));
    // The observability headline: the profiler's observation-only and
    // free-when-off contracts, both measured. Bit-identity (profiler on
    // vs off: fleet digests, makespans, covert grid digest) is gated
    // hard; the disabled-hook cost gates on its own paired sign-test
    // verdict; the enabled-profiler cost is informational.
    let o = suites::obs::run(smoke);
    println!(
        "obs profiler: {} procs, identical {}, {} virtual ns attributed over \
         {} leaves ({} charges); disabled hooks {:.2}x (sign test: {} faster / \
         {} slower, p={:.4}); enabled profiler {:.2}x; top {} ({} ns)",
        o.procs,
        o.identical,
        o.charged_total_ns,
        o.profile_leaves,
        o.profile_charges,
        o.disabled.speedup,
        o.disabled.sign.less,
        o.disabled.sign.greater,
        o.disabled.sign.p_value,
        o.enabled.speedup,
        o.top_path,
        o.top_ns
    );
    headlines.push_str(&format!(",\n  \"obs\": {{{}}}", o.json_fields()));
    headlines.push_str(&format!(
        ",\n  \"obs_disabled_overhead\": {{{}}}",
        o.disabled_json_fields()
    ));
    headlines.push_str(&format!(
        ",\n  \"obs_profiler_cost\": {{{}}}",
        o.enabled_json_fields()
    ));

    let json = format!(
        "{{\n  \"schema\": \"gray-bench-baseline/v1\",\n  \"smoke\": {smoke},\n{}{headlines}\n}}\n",
        sections.join(",\n")
    );
    let out = if smoke { SMOKE_OUT } else { BASELINE };
    std::fs::write(out, &json).expect("write baseline file");
    println!("\nwrote {out}");
}

/// Compares two baseline files and prints the regressions. Returns the
/// exit code `--strict` propagates: 0 when no *deterministic* metric
/// (accuracy, virtual-time speedup) regressed, 1 otherwise. Host-time
/// regressions past [`REGRESSION`] are printed but never fail the diff —
/// see the module docs for why.
fn diff(old_path: &str, new_path: &str) -> i32 {
    let old = read_means(old_path);
    let new = read_means(new_path);
    let mut regressed = 0usize;
    let mut compared = 0usize;
    println!("diff {old_path} → {new_path} (regression bar {REGRESSION}x)");
    // Whole suites may exist in only one file (a PR adds or retires a
    // suite); that is a fact to report, not an error to die on.
    let old_suites = read_suites(old_path);
    let new_suites = read_suites(new_path);
    for s in &new_suites {
        if !old_suites.contains(s) {
            println!("  new suite {s} (entries below report as new)");
        }
    }
    for s in &old_suites {
        if !new_suites.contains(s) {
            println!("  removed suite {s}");
        }
    }
    for (name, new_mean) in &new {
        let Some(old_mean) = old.iter().find(|(n, _)| n == name).map(|(_, m)| *m) else {
            println!("  new       {name}: {new_mean:.0} ns");
            continue;
        };
        compared += 1;
        let ratio = if old_mean > 0.0 {
            new_mean / old_mean
        } else {
            1.0
        };
        if ratio > REGRESSION {
            regressed += 1;
            println!("  slower    {name}: {old_mean:.0} ns → {new_mean:.0} ns ({ratio:.2}x)");
        } else if ratio < 1.0 / REGRESSION {
            println!("  faster    {name}: {old_mean:.0} ns → {new_mean:.0} ns ({ratio:.2}x)");
        }
    }
    for (name, _) in &old {
        if !new.iter().any(|(n, _)| n == name) {
            println!("  removed   {name}");
        }
    }
    let hard = diff_accuracy(old_path, new_path)
        + diff_virtual(old_path, new_path)
        + diff_gbd(old_path, new_path)
        + diff_fleet(old_path, new_path)
        + diff_matrix(old_path, new_path)
        + diff_covert(old_path, new_path)
        + diff_obs(old_path, new_path);
    println!(
        "{compared} compared: {regressed} host-time slower (informational), \
         {hard} deterministic regressions"
    );
    i32::from(hard > 0)
}

/// Compares the virtual-time scheduler headline — deterministic, so any
/// real drop is a scheduling regression, not noise. 10% slack tolerates
/// intentional re-tuning of the fleet scenario.
fn diff_virtual(old_path: &str, new_path: &str) -> usize {
    let speedup = |path: &str| -> Option<f64> {
        let text = std::fs::read_to_string(path).ok()?;
        let line = text.lines().find(|l| l.contains("serial_virtual_ns"))?;
        field_num(line, "speedup")
    };
    let (Some(old_v), Some(new_v)) = (speedup(old_path), speedup(new_path)) else {
        return 0;
    };
    if new_v < old_v * 0.9 {
        println!("  REGRESSED sched_fccd_speedup: {old_v:.3}x → {new_v:.3}x (virtual time)");
        return 1;
    }
    if new_v > old_v * 1.1 {
        println!("  improved  sched_fccd_speedup: {old_v:.3}x → {new_v:.3}x (virtual time)");
    }
    0
}

/// Compares the `"accuracy"` lines of two baseline files. Higher is
/// better for precision/recall, lower for MAC error; a move past
/// [`ACCURACY_SLACK`] in the bad direction counts as a regression.
/// Baselines from before the accuracy suite simply have no line to
/// compare, and the new values print as informational.
fn diff_accuracy(old_path: &str, new_path: &str) -> usize {
    let new = read_accuracy(new_path);
    let old = read_accuracy(old_path);
    let mut regressed = 0usize;
    for (key, higher_is_better) in [
        ("fccd_precision", true),
        ("fccd_recall", true),
        ("mac_abs_err", false),
    ] {
        let Some(new_v) = new.iter().find(|(k, _)| *k == key).map(|(_, v)| *v) else {
            continue;
        };
        let Some(old_v) = old.iter().find(|(k, _)| *k == key).map(|(_, v)| *v) else {
            println!("  new       accuracy.{key}: {new_v:.4}");
            continue;
        };
        let delta = if higher_is_better {
            old_v - new_v
        } else {
            new_v - old_v
        };
        if delta > ACCURACY_SLACK {
            regressed += 1;
            println!("  REGRESSED accuracy.{key}: {old_v:.4} → {new_v:.4}");
        } else if delta < -ACCURACY_SLACK {
            println!("  improved  accuracy.{key}: {old_v:.4} → {new_v:.4}");
        }
    }
    regressed
}

/// Compares the daemon headline — virtual-time deterministic, like the
/// scheduler speedup. Hit rate and shed rate get the same absolute slack
/// as accuracy (they are ratios of exact counters, so slack only
/// forgives intentional scenario re-tuning); the per-query virtual cost
/// gets the 10% relative slack of the scheduler headline. A baseline
/// from before the daemon suite has no line, so its fields report as
/// new rather than erroring.
fn diff_gbd(old_path: &str, new_path: &str) -> usize {
    let read = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"virtual_ns_per_query\":"))
            .map(str::to_string)
    };
    let Some(new_line) = read(new_path) else {
        if read(old_path).is_some() {
            println!("  removed   gbd daemon headline");
        }
        return 0;
    };
    let Some(old_line) = read(old_path) else {
        println!("  new       gbd daemon headline");
        return 0;
    };
    let mut regressed = 0usize;
    let rate = |line: &str, num: &str, den: &str| -> Option<f64> {
        Some(field_num(line, num)? / field_num(line, den)?.max(1.0))
    };
    if let (Some(old_v), Some(new_v)) = (
        rate(&old_line, "hits", "queries"),
        rate(&new_line, "hits", "queries"),
    ) {
        if old_v - new_v > ACCURACY_SLACK {
            regressed += 1;
            println!("  REGRESSED gbd.hit_rate: {old_v:.4} → {new_v:.4}");
        } else if new_v - old_v > ACCURACY_SLACK {
            println!("  improved  gbd.hit_rate: {old_v:.4} → {new_v:.4}");
        }
    }
    if let (Some(old_v), Some(new_v)) = (
        rate(&old_line, "shed", "queries"),
        rate(&new_line, "shed", "queries"),
    ) {
        if new_v - old_v > ACCURACY_SLACK {
            regressed += 1;
            println!("  REGRESSED gbd.shed_rate: {old_v:.4} → {new_v:.4}");
        } else if old_v - new_v > ACCURACY_SLACK {
            println!("  improved  gbd.shed_rate: {old_v:.4} → {new_v:.4}");
        }
    }
    if let (Some(old_v), Some(new_v)) = (
        field_num(&old_line, "virtual_ns_per_query"),
        field_num(&new_line, "virtual_ns_per_query"),
    ) {
        if new_v > old_v * 1.1 {
            regressed += 1;
            println!("  REGRESSED gbd.virtual_ns_per_query: {old_v:.0} → {new_v:.0}");
        } else if new_v < old_v * 0.9 {
            println!("  improved  gbd.virtual_ns_per_query: {old_v:.0} → {new_v:.0}");
        }
    }
    regressed
}

/// Compares the executor fleet headline. Two of its fields are
/// deterministic and therefore gated: the bit-identity flag (`false` in
/// the new baseline is always a hard regression — the backends diverged)
/// and the virtual-time fleet makespan (same 10% relative slack as the
/// other virtual headlines, forgiving intentional scenario re-tuning).
/// The backend host-time comparison gates only on its own *decided*
/// verdict row (`fleet_host_speedup`, measured paired and interleaved):
/// a hard failure requires the paired sign test to find the events
/// backend significantly slower than threads (`sign_greater > sign_less`
/// at p < 0.05) **and** the median paired speedup below 0.8 — the events
/// executor consistently losing to the backend it replaced, which no
/// amount of runner noise produces under paired A/B/B/A interleaving.
/// The raw medians stay informational.
fn diff_fleet(old_path: &str, new_path: &str) -> usize {
    let read = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        // `"xl_virtual_ns":` appears only in this headline's line.
        text.lines()
            .find(|l| l.contains("\"xl_virtual_ns\":"))
            .map(str::to_string)
    };
    let Some(new_line) = read(new_path) else {
        if read(old_path).is_some() {
            println!("  removed   exec fleet headline");
        }
        return 0;
    };
    let mut regressed = 0usize;
    if new_line.contains("\"identical\":false") {
        regressed += 1;
        println!("  REGRESSED exec_fleet_speedup.identical: backends diverged");
    }
    // The paired verdict row gates on the new file alone — the decision
    // rule is recorded in the row itself.
    let speedup_line = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"events_median_ns\":"))
            .map(str::to_string)
    };
    if let Some(line) = speedup_line(new_path) {
        let speedup = field_num(&line, "speedup").unwrap_or(1.0);
        let less = field_num(&line, "sign_less").unwrap_or(0.0);
        let greater = field_num(&line, "sign_greater").unwrap_or(0.0);
        let p = field_num(&line, "p_value").unwrap_or(1.0);
        if greater > less && p < 0.05 && speedup < 0.8 {
            regressed += 1;
            println!(
                "  REGRESSED fleet_host_speedup: {speedup:.2}x \
                 (events significantly slower than threads, p={p:.4})"
            );
        } else {
            println!(
                "  info      fleet_host_speedup: {speedup:.2}x \
                 (sign test {less:.0} faster / {greater:.0} slower, p={p:.4})"
            );
        }
    }
    let Some(old_line) = read(old_path) else {
        println!("  new       exec fleet headline");
        return regressed;
    };
    if let (Some(old_v), Some(new_v)) = (
        field_num(&old_line, "virtual_ns"),
        field_num(&new_line, "virtual_ns"),
    ) {
        if new_v > old_v * 1.1 {
            regressed += 1;
            println!("  REGRESSED exec_fleet.virtual_ns: {old_v:.0} → {new_v:.0}");
        } else if new_v < old_v * 0.9 {
            println!("  improved  exec_fleet.virtual_ns: {old_v:.0} → {new_v:.0}");
        }
    }
    if let (Some(old_v), Some(new_v)) = (
        field_num(&old_line, "host_speedup"),
        field_num(&new_line, "host_speedup"),
    ) {
        println!("  info      exec_fleet.host_speedup: {old_v:.2}x → {new_v:.2}x (informational)");
    }
    regressed
}

/// Compares the scenario-matrix headline and its paired host-time row.
///
/// Deterministic and therefore gated: the worker-count bit-identity flag
/// (`identical:false` in the new baseline is always a hard regression —
/// the grid depended on scheduling) and the aggregate scores (precision/
/// recall/MAC error under [`ACCURACY_SLACK`], total virtual makespan
/// under the usual 10% slack).
///
/// The host-speedup row is measured, not deterministic, so it gates only
/// on its own *decided* verdict: a hard failure requires the paired sign
/// test to find the N-worker run significantly slower (`sign_greater >
/// sign_less` at p < 0.05) **and** the median paired speedup below 0.8 —
/// i.e. parallelism made things consistently worse, which no amount of
/// runner noise produces under paired A/B/B/A interleaving. A small or
/// single-core host (see `host_cpus`) yields ~1x with an insignificant
/// sign test and passes; only a real fan-out regression fails.
fn diff_matrix(old_path: &str, new_path: &str) -> usize {
    let headline = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"grid_digest\":"))
            .map(str::to_string)
    };
    let Some(new_line) = headline(new_path) else {
        if headline(old_path).is_some() {
            println!("  removed   scenario matrix headline");
        }
        return 0;
    };
    let mut regressed = 0usize;
    if new_line.contains("\"identical\":false") {
        regressed += 1;
        println!("  REGRESSED matrix.identical: grid depends on worker count");
    }
    // The speedup row gates on the new file alone — the decision rule is
    // recorded in the row itself.
    let speedup_line = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"one_worker_median_ns\":"))
            .map(str::to_string)
    };
    if let Some(line) = speedup_line(new_path) {
        let speedup = field_num(&line, "speedup").unwrap_or(1.0);
        let less = field_num(&line, "sign_less").unwrap_or(0.0);
        let greater = field_num(&line, "sign_greater").unwrap_or(0.0);
        let p = field_num(&line, "p_value").unwrap_or(1.0);
        let cpus = field_num(&line, "host_cpus").unwrap_or(1.0);
        if greater > less && p < 0.05 && speedup < 0.8 {
            regressed += 1;
            println!(
                "  REGRESSED matrix_host_speedup: {speedup:.2}x on {cpus:.0} cpus \
                 (N workers significantly slower, p={p:.4})"
            );
        } else {
            println!(
                "  info      matrix_host_speedup: {speedup:.2}x on {cpus:.0} cpus \
                 (sign test {less:.0} faster / {greater:.0} slower, p={p:.4})"
            );
        }
    }
    let Some(old_line) = headline(old_path) else {
        println!("  new       scenario matrix headline");
        return regressed;
    };
    // Aggregates are only comparable over the same grid: a full baseline
    // vs a smoke baseline sweeps different cells, and their means differ
    // by construction, not by regression.
    let cells = |line: &str| field_num(line, "cells");
    if cells(&old_line) != cells(&new_line) {
        println!(
            "  info      matrix grid shape changed ({:.0} → {:.0} cells); \
             aggregate comparison skipped",
            cells(&old_line).unwrap_or(0.0),
            cells(&new_line).unwrap_or(0.0)
        );
        return regressed;
    }
    for (key, higher_is_better) in [("precision", true), ("recall", true), ("mac_err", false)] {
        let (Some(old_v), Some(new_v)) = (field_num(&old_line, key), field_num(&new_line, key))
        else {
            continue;
        };
        let delta = if higher_is_better {
            old_v - new_v
        } else {
            new_v - old_v
        };
        if delta > ACCURACY_SLACK {
            regressed += 1;
            println!("  REGRESSED matrix.{key}: {old_v:.4} → {new_v:.4}");
        } else if delta < -ACCURACY_SLACK {
            println!("  improved  matrix.{key}: {old_v:.4} → {new_v:.4}");
        }
    }
    if let (Some(old_v), Some(new_v)) = (
        field_num(&old_line, "total_virtual_ns"),
        field_num(&new_line, "total_virtual_ns"),
    ) {
        if new_v > old_v * 1.1 {
            regressed += 1;
            println!("  REGRESSED matrix.total_virtual_ns: {old_v:.0} → {new_v:.0}");
        } else if new_v < old_v * 0.9 {
            println!("  improved  matrix.total_virtual_ns: {old_v:.0} → {new_v:.0}");
        }
    }
    regressed
}

/// Compares the covert-channel headline and its per-cell grid.
///
/// Everything in this suite is virtual-time deterministic, so the gates
/// apply to the new baseline alone (the claims must hold in every
/// baseline, whatever the old file says):
///
/// - `identical:false` — the grid depended on the worker count;
/// - `quiet_errors > 0` — a no-defender channel decoded bits wrongly on
///   a quiet platform, i.e. the side channel itself broke;
/// - `late_wakeups > 0` — a process overran its slot schedule, so the
///   scores no longer measure the protocol they claim to;
/// - the noise defender must leave the FCCD channel with *less* capacity
///   than the idle baseline, and the eager-flush defender likewise for
///   the WBD channel — the defender taxonomy's headline claims.
///
/// Cross-file, the quiet capacity gets the usual 10% relative slack when
/// the grid shape matches; a full-vs-smoke comparison skips it.
fn diff_covert(old_path: &str, new_path: &str) -> usize {
    let headline = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"covert_digest\":"))
            .map(str::to_string)
    };
    let Some(new_line) = headline(new_path) else {
        if headline(old_path).is_some() {
            println!("  removed   covert headline");
        }
        return 0;
    };
    let mut regressed = 0usize;
    if new_line.contains("\"identical\":false") {
        regressed += 1;
        println!("  REGRESSED covert.identical: grid depends on worker count");
    }
    if field_num(&new_line, "quiet_errors").unwrap_or(0.0) > 0.0 {
        regressed += 1;
        println!("  REGRESSED covert.quiet_errors: no-defender channel decoded bits wrongly");
    }
    if field_num(&new_line, "late_wakeups").unwrap_or(0.0) > 0.0 {
        regressed += 1;
        println!("  REGRESSED covert.late_wakeups: slot schedule overran");
    }
    // Per-cell defender-degradation claims, re-checked from the grid
    // lines of the new file. Labels are `platform/channel/defender/bN`.
    let capacity = |prefix: &str| -> Option<f64> {
        let text = std::fs::read_to_string(new_path).ok()?;
        let line = text
            .lines()
            .find(|l| field_str(l, "channel_cell").is_some_and(|c| c.starts_with(prefix)))?
            .to_string();
        field_num(&line, "capacity_bps")
    };
    for (channel, defender) in [("fccd", "noise"), ("wbd", "flush")] {
        let quiet = capacity(&format!("linux/{channel}/none/"));
        let defended = capacity(&format!("linux/{channel}/{defender}/"));
        match (quiet, defended) {
            (Some(q), Some(d)) if d >= q => {
                regressed += 1;
                println!(
                    "  REGRESSED covert.{channel}: {defender} defender no longer degrades \
                     capacity ({q:.2} → {d:.2} bps)"
                );
            }
            (Some(q), Some(d)) => {
                println!("  info      covert.{channel}: {defender} defender {q:.2} → {d:.2} bps");
            }
            _ => {}
        }
    }
    let Some(old_line) = headline(old_path) else {
        println!("  new       covert headline");
        return regressed;
    };
    let cells = |line: &str| field_num(line, "cells");
    if cells(&old_line) != cells(&new_line) {
        println!(
            "  info      covert grid shape changed ({:.0} → {:.0} cells); \
             aggregate comparison skipped",
            cells(&old_line).unwrap_or(0.0),
            cells(&new_line).unwrap_or(0.0)
        );
        return regressed;
    }
    if let (Some(old_v), Some(new_v)) = (
        field_num(&old_line, "quiet_capacity_bps"),
        field_num(&new_line, "quiet_capacity_bps"),
    ) {
        if new_v < old_v * 0.9 {
            regressed += 1;
            println!("  REGRESSED covert.quiet_capacity_bps: {old_v:.2} → {new_v:.2}");
        } else if new_v > old_v * 1.1 {
            println!("  improved  covert.quiet_capacity_bps: {old_v:.2} → {new_v:.2}");
        }
    }
    regressed
}

/// Compares the observability headline and its paired overhead row.
///
/// Gated on the new baseline alone (the profiler's contracts must hold
/// in every baseline):
///
/// - `identical:false` — enabling the profiler moved a virtual-time
///   result (fleet digest, makespan, or covert grid digest): the
///   observation-only contract broke;
/// - `charged_total_ns` of zero — the charge hooks came unwired, so the
///   attribution tree is empty while the fleet plainly consumed time;
/// - the `obs_disabled_overhead` row — the strict diff re-applies the
///   recorded paired verdict: a hard failure requires the sign test to
///   find the hooked loop significantly slower (`sign_greater >
///   sign_less` at p < 0.05) **and** the median paired speedup below
///   0.8, i.e. the *disabled* hooks cost more than a quarter of a
///   16-step splitmix64 work unit — which one relaxed load and a branch
///   cannot, so only a real fast-path regression fails.
///
/// Cross-file, the profiler-off virtual makespan gets the usual 10%
/// slack when the fleet size matches; the profile tree shape
/// (leaves/digest/top path) is informational — re-tuning the scenario
/// legitimately moves it. The `obs_profiler_cost` row never gates:
/// profiling is expected to cost host time.
fn diff_obs(old_path: &str, new_path: &str) -> usize {
    let headline = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"charged_total_ns\":"))
            .map(str::to_string)
    };
    let Some(new_line) = headline(new_path) else {
        if headline(old_path).is_some() {
            println!("  removed   obs profiler headline");
        }
        return 0;
    };
    let mut regressed = 0usize;
    if new_line.contains("\"identical\":false") {
        regressed += 1;
        println!("  REGRESSED obs.identical: profiler perturbed virtual time");
    }
    if field_num(&new_line, "charged_total_ns").unwrap_or(0.0) <= 0.0 {
        regressed += 1;
        println!("  REGRESSED obs.charged_total_ns: profiler attributed nothing");
    }
    // The overhead row gates on the new file alone — the decision rule
    // is recorded in the row itself.
    let overhead_line = |path: &str| -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        text.lines()
            .find(|l| l.contains("\"hook_median_ns\":"))
            .map(str::to_string)
    };
    if let Some(line) = overhead_line(new_path) {
        let speedup = field_num(&line, "speedup").unwrap_or(1.0);
        let less = field_num(&line, "sign_less").unwrap_or(0.0);
        let greater = field_num(&line, "sign_greater").unwrap_or(0.0);
        let p = field_num(&line, "p_value").unwrap_or(1.0);
        if greater > less && p < 0.05 && speedup < 0.8 {
            regressed += 1;
            println!(
                "  REGRESSED obs_disabled_overhead: {speedup:.2}x \
                 (disabled hooks significantly slower, p={p:.4})"
            );
        } else {
            println!(
                "  info      obs_disabled_overhead: {speedup:.2}x \
                 (sign test {less:.0} faster / {greater:.0} slower, p={p:.4})"
            );
        }
    }
    let Some(old_line) = headline(old_path) else {
        println!("  new       obs profiler headline");
        return regressed;
    };
    // The makespan is only comparable over the same fleet (full vs
    // smoke run different sizes).
    if field_num(&old_line, "procs") != field_num(&new_line, "procs") {
        println!(
            "  info      obs fleet size changed ({:.0} → {:.0} procs); \
             makespan comparison skipped",
            field_num(&old_line, "procs").unwrap_or(0.0),
            field_num(&new_line, "procs").unwrap_or(0.0)
        );
        return regressed;
    }
    if let (Some(old_v), Some(new_v)) = (
        field_num(&old_line, "baseline_virtual_ns"),
        field_num(&new_line, "baseline_virtual_ns"),
    ) {
        if new_v > old_v * 1.1 {
            regressed += 1;
            println!("  REGRESSED obs.baseline_virtual_ns: {old_v:.0} → {new_v:.0}");
        } else if new_v < old_v * 0.9 {
            println!("  improved  obs.baseline_virtual_ns: {old_v:.0} → {new_v:.0}");
        }
    }
    regressed
}

/// The suite-section names of a baseline file (`"toolbox": [` lines).
fn read_suites(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let t = l.trim_end();
            let name = t.strip_suffix("\": [")?.trim_start().strip_prefix('"')?;
            Some(name.to_string())
        })
        .collect()
}

/// Extracts the accuracy fields from a baseline file's `"accuracy"` line.
fn read_accuracy(path: &str) -> Vec<(&'static str, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(line) = text.lines().find(|l| l.contains("\"fccd_precision\":")) else {
        return Vec::new();
    };
    ["fccd_precision", "fccd_recall", "mac_abs_err"]
        .into_iter()
        .filter_map(|key| field_num(line, key).map(|v| (key, v)))
        .collect()
}

/// Extracts `(name, mean_ns)` pairs from a baseline file without a JSON
/// dependency: entries are one `{"name":"...","mean_ns":...}` object per
/// line, which is exactly what this runner writes.
fn read_means(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(mean) = field_num(line, "mean_ns") else {
            continue;
        };
        out.push((name, mean));
    }
    out
}

/// The string value of `"key":"..."` in `line`, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// The numeric value of `"key":...` in `line`, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
