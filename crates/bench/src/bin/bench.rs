//! The benchmark runner: sweeps every suite and persists a baseline file.
//!
//! ```text
//! cargo run --release -p gray-bench --bin bench              # full run → BENCH_PR4.json
//! cargo run --release -p gray-bench --bin bench -- --smoke   # 1 warmup + 1 iter each → BENCH_SMOKE.json
//! cargo run --release -p gray-bench --bin bench -- fccd      # substring filter, as with cargo bench
//! cargo run --release -p gray-bench --bin bench -- --diff BENCH_PR3.json BENCH_PR4.json
//! ```
//!
//! The baseline file holds one entry per suite with the per-benchmark
//! summaries (mean/stddev/min and friends), plus two headline numbers:
//! the scalar-vs-batched speedup of the FCCD full-file probe (the
//! vectored probe engine) and the serial-vs-concurrent virtual-time
//! speedup of multi-file FCCD probing through the scheduler. Smoke runs
//! write to a separate file so a CI invocation in a checkout can never
//! clobber a committed baseline with single-iteration noise.
//!
//! `--diff old new` compares two baseline files by benchmark mean and
//! prints per-target regressions (no benches are run).

use gray_bench::suites;
use gray_toolbox::bench::Harness;
use std::time::Duration;

/// Baseline file for full runs (committed at the repo root).
const BASELINE: &str = "BENCH_PR4.json";
/// Output for smoke runs (existence proof only, never committed).
const SMOKE_OUT: &str = "BENCH_SMOKE.json";
/// Mean-time ratio above which `--diff` flags a benchmark as regressed.
const REGRESSION: f64 = 1.25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        match args.get(pos + 1).zip(args.get(pos + 2)) {
            Some((old, new)) => std::process::exit(diff(old, new)),
            None => {
                eprintln!("usage: bench --diff <old.json> <new.json>");
                std::process::exit(2);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    let mut sections = Vec::new();
    let mut scalar_mean = None;
    let mut batched_mean = None;

    for (target, register) in suites::ALL {
        println!("=== {target} ===");
        // A fresh harness per suite: per-suite budgets, and the figures
        // suite's group prefix cannot leak into the next suite.
        let mut h = Harness::new()
            .warm_up_time(Duration::from_millis(250))
            .measurement_time(Duration::from_secs(1));
        register(&mut h);
        for r in h.results() {
            if r.name == suites::icl::PROBE_SCALAR {
                scalar_mean = Some(r.mean_ns);
            }
            if r.name == suites::icl::PROBE_BATCHED {
                batched_mean = Some(r.mean_ns);
            }
        }
        let entries: Vec<String> = h
            .results()
            .iter()
            .map(|r| format!("    {}", r.json()))
            .collect();
        sections.push(format!("  \"{target}\": [\n{}\n  ]", entries.join(",\n")));
    }

    let mut headlines = String::new();
    if let (Some(s), Some(b)) = (scalar_mean, batched_mean) {
        if b > 0.0 {
            let x = s / b;
            println!("\nfccd probe engine: scalar {s:.0} ns vs batched {b:.0} ns → {x:.2}x");
            headlines.push_str(&format!(
                ",\n  \"fccd_probe_speedup\": {{\"scalar_mean_ns\":{s:.1},\
                 \"batched_mean_ns\":{b:.1},\"speedup\":{x:.3}}}"
            ));
        }
    }
    // The scheduler headline is virtual-time, so it is exact and cheap:
    // compute it even under --smoke (where the host-time harness runs a
    // single iteration and its entries are noise).
    let sched = suites::sched::fccd_multifile_speedup();
    println!(
        "sched fccd fleet: serial {} ns vs concurrent {} ns (virtual) → {:.2}x",
        sched.serial_ns, sched.concurrent_ns, sched.speedup
    );
    headlines.push_str(&format!(
        ",\n  \"sched_fccd_speedup\": {{\"serial_virtual_ns\":{},\
         \"concurrent_virtual_ns\":{},\"files\":{},\"speedup\":{:.3}}}",
        sched.serial_ns,
        sched.concurrent_ns,
        suites::sched::FLEET_FILES,
        sched.speedup
    ));

    let json = format!(
        "{{\n  \"schema\": \"gray-bench-baseline/v1\",\n  \"smoke\": {smoke},\n{}{headlines}\n}}\n",
        sections.join(",\n")
    );
    let out = if smoke { SMOKE_OUT } else { BASELINE };
    std::fs::write(out, &json).expect("write baseline file");
    println!("\nwrote {out}");
}

/// Compares two baseline files by per-benchmark mean time and prints the
/// regressions. Returns the process exit code: 0 when nothing regressed
/// past [`REGRESSION`], 1 otherwise.
fn diff(old_path: &str, new_path: &str) -> i32 {
    let old = read_means(old_path);
    let new = read_means(new_path);
    let mut regressed = 0usize;
    let mut compared = 0usize;
    println!("diff {old_path} → {new_path} (regression bar {REGRESSION}x)");
    for (name, new_mean) in &new {
        let Some(old_mean) = old.iter().find(|(n, _)| n == name).map(|(_, m)| *m) else {
            println!("  new       {name}: {new_mean:.0} ns");
            continue;
        };
        compared += 1;
        let ratio = if old_mean > 0.0 {
            new_mean / old_mean
        } else {
            1.0
        };
        if ratio > REGRESSION {
            regressed += 1;
            println!("  REGRESSED {name}: {old_mean:.0} ns → {new_mean:.0} ns ({ratio:.2}x)");
        } else if ratio < 1.0 / REGRESSION {
            println!("  improved  {name}: {old_mean:.0} ns → {new_mean:.0} ns ({ratio:.2}x)");
        }
    }
    for (name, _) in &old {
        if !new.iter().any(|(n, _)| n == name) {
            println!("  removed   {name}");
        }
    }
    println!("{compared} compared, {regressed} regressed");
    i32::from(regressed > 0)
}

/// Extracts `(name, mean_ns)` pairs from a baseline file without a JSON
/// dependency: entries are one `{"name":"...","mean_ns":...}` object per
/// line, which is exactly what this runner writes.
fn read_means(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(mean) = field_num(line, "mean_ns") else {
            continue;
        };
        out.push((name, mean));
    }
    out
}

/// The string value of `"key":"..."` in `line`, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// The numeric value of `"key":...` in `line`, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
