//! The benchmark runner: sweeps every suite and persists a baseline file.
//!
//! ```text
//! cargo run --release -p gray-bench --bin bench              # full run → BENCH_PR3.json
//! cargo run --release -p gray-bench --bin bench -- --smoke   # 1 warmup + 1 iter each → BENCH_SMOKE.json
//! cargo run --release -p gray-bench --bin bench -- fccd      # substring filter, as with cargo bench
//! ```
//!
//! The baseline file holds one entry per suite with the per-benchmark
//! summaries (mean/stddev/min and friends), plus the scalar-vs-batched
//! speedup of the FCCD full-file probe — the headline number for the
//! vectored probe engine. Smoke runs write to a separate file so a CI
//! invocation in a checkout can never clobber a committed baseline with
//! single-iteration noise.

use gray_bench::suites;
use gray_toolbox::bench::Harness;
use std::time::Duration;

/// Baseline file for full runs (committed at the repo root).
const BASELINE: &str = "BENCH_PR3.json";
/// Output for smoke runs (existence proof only, never committed).
const SMOKE_OUT: &str = "BENCH_SMOKE.json";

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");

    let mut sections = Vec::new();
    let mut scalar_mean = None;
    let mut batched_mean = None;

    for (target, register) in suites::ALL {
        println!("=== {target} ===");
        // A fresh harness per suite: per-suite budgets, and the figures
        // suite's group prefix cannot leak into the next suite.
        let mut h = Harness::new()
            .warm_up_time(Duration::from_millis(250))
            .measurement_time(Duration::from_secs(1));
        register(&mut h);
        for r in h.results() {
            if r.name == suites::icl::PROBE_SCALAR {
                scalar_mean = Some(r.mean_ns);
            }
            if r.name == suites::icl::PROBE_BATCHED {
                batched_mean = Some(r.mean_ns);
            }
        }
        let entries: Vec<String> = h
            .results()
            .iter()
            .map(|r| format!("    {}", r.json()))
            .collect();
        sections.push(format!("  \"{target}\": [\n{}\n  ]", entries.join(",\n")));
    }

    let speedup = match (scalar_mean, batched_mean) {
        (Some(s), Some(b)) if b > 0.0 => {
            let x = s / b;
            println!("\nfccd probe engine: scalar {s:.0} ns vs batched {b:.0} ns → {x:.2}x");
            format!(
                ",\n  \"fccd_probe_speedup\": {{\"scalar_mean_ns\":{s:.1},\
                 \"batched_mean_ns\":{b:.1},\"speedup\":{x:.3}}}"
            )
        }
        // Filtered out (or smoke-filtered): no headline entry.
        _ => String::new(),
    };

    let json = format!(
        "{{\n  \"schema\": \"gray-bench-baseline/v1\",\n  \"smoke\": {smoke},\n{}{speedup}\n}}\n",
        sections.join(",\n")
    );
    let out = if smoke { SMOKE_OUT } else { BASELINE };
    std::fs::write(out, &json).expect("write baseline file");
    println!("\nwrote {out}");
}
