//! `graybox-icl` — umbrella crate for the gray-box Information and
//! Control Layer workspace, a reproduction of *Information and Control in
//! Gray-Box Systems* (Arpaci-Dusseau & Arpaci-Dusseau, SOSP 2001).
//!
//! This crate re-exports the workspace members under one roof so examples
//! and downstream users can depend on a single crate:
//!
//! - [`graybox`] — the ICLs themselves (FCCD, FLDC, MAC) and the
//!   `GrayBoxOs` trait (the paper's primary contribution);
//! - [`toolbox`] — the gray toolbox (timers, statistics, clustering,
//!   parameter repository);
//! - [`sched`] — the shared probe-scheduler runtime that fans ICL probe
//!   plans out across processes;
//! - [`gbd`] — the long-running multi-tenant inference daemon that serves
//!   FCCD/MAC/FLDC queries from a shared cache over one scheduler;
//! - [`covert`] — the adversarial covert-channel subsystem (transmit /
//!   infer / defend over shared page-cache and dirty-page state);
//! - [`simos`] — the deterministic simulated OS substrate;
//! - [`hostos`] — the real-OS backend over `std`;
//! - [`apps`] — grep, fastsort, gbp, and the scan workloads;
//! - [`priorart`] — Table 1's pre-existing gray-box systems in miniature.
//!
//! See `examples/` for runnable entry points and the `repro` crate for the
//! per-figure reproduction harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use covert;
pub use gbd;
pub use gray_apps as apps;
pub use gray_sched as sched;
pub use gray_toolbox as toolbox;
pub use graybox;
pub use hostos;
pub use priorart;
pub use simos;

/// The paper this workspace reproduces.
pub const PAPER: &str =
    "Arpaci-Dusseau & Arpaci-Dusseau, \"Information and Control in Gray-Box Systems\", SOSP 2001";

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let _ = crate::toolbox::OnlineStats::new();
        let _ = crate::graybox::fccd::FccdParams::default();
        let _ = crate::sched::SchedConfig::default();
        let _ = crate::gbd::GbdConfig::default();
        let _ = crate::simos::SimConfig::small();
        assert!(crate::PAPER.contains("SOSP 2001"));
    }
}
