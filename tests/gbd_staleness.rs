//! Cache-staleness policy coverage for the inference daemon (`gbd`).
//!
//! The scenario the staleness trait exists for: a tenant caches an FCCD
//! classification, then the page cache churns *behind the daemon* — the
//! oracle flips exactly which files are resident. A later overlapping
//! probe pass produces verdicts that contradict the cached entry, and
//! the two shipped policies must diverge:
//!
//! - **churn-aware**: the contradicted entry is evicted and re-inferred
//!   in the same tick, so the tenant's repeat query answers the *new*
//!   truth (checked against the oracle) well before TTL expiry;
//! - **TTL-only**: churn is invisible, so the repeat query serves the
//!   stale pre-churn answer until the virtual clock passes the TTL, at
//!   which point the entry expires and a fresh execution answers the
//!   new truth.
//!
//! Both daemons run on identically-booted machines and the whole case is
//! drawn from the property harness, so a failure replays exactly:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q --test gbd_staleness
//! ```

use graybox_icl::gbd::{Gbd, GbdConfig, Query, Reply, Response};
use graybox_icl::graybox::fccd::FccdParams;
use graybox_icl::sched::SchedConfig;
use graybox_icl::simos::{scenario, Sim};
use graybox_icl::toolbox::prop::{check, Gen};
use graybox_icl::toolbox::GrayDuration;

/// Virtual TTL: far above the probe time of a few small files, so the
/// mid-run repeat query is a staleness decision, not an expiry.
const TTL: GrayDuration = GrayDuration::from_secs(30);
const FILE_BYTES: u64 = 2 << 20;

/// Builds one daemon machine with `nfiles` cold files and warms the
/// subset selected by `mask`.
fn boot(nfiles: usize, mask: &[bool]) -> (Sim, Vec<(String, u64)>) {
    let mut sim = scenario::daemon_machine(2, 2);
    let files = scenario::spread_corpus(&mut sim, 2, nfiles.div_ceil(2), FILE_BYTES);
    let files: Vec<(String, u64)> = files.into_iter().take(nfiles).collect();
    let warm: Vec<(String, u64)> = files
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(f, _)| f.clone())
        .collect();
    scenario::warm(&mut sim, &warm);
    (sim, files)
}

/// A daemon with the given staleness policy and a deterministic FCCD
/// geometry sized for the small machine.
fn daemon(seed: u64, churn_aware: bool) -> Gbd {
    let cfg = GbdConfig {
        cache_ttl: TTL,
        fccd: FccdParams {
            access_unit: 1 << 20,
            prediction_unit: 256 << 10,
            seed,
            ..FccdParams::default()
        },
        sched: SchedConfig {
            concurrency: 1,
            sub_batch: 0,
            ..SchedConfig::default()
        },
        ..GbdConfig::default()
    };
    let policy: Box<dyn graybox_icl::gbd::StalenessPolicy> = if churn_aware {
        Box::new(cfg.churn_policy())
    } else {
        Box::new(cfg.ttl_policy())
    };
    Gbd::new(cfg, policy)
}

/// Asserts a classified reply agrees with the given residency mask.
fn assert_matches_mask(resp: &Response, files: &[(String, u64)], mask: &[bool], what: &str) {
    let Reply::Classified {
        cached, uncached, ..
    } = &resp.reply
    else {
        panic!("{what}: expected a classification, got {:?}", resp.reply);
    };
    for ((path, _), &warm) in files.iter().zip(mask) {
        let (should, shouldnt) = if warm {
            (cached, uncached)
        } else {
            (uncached, cached)
        };
        assert!(
            should.iter().any(|r| &r.path == path),
            "{what}: {path} (warm={warm}) missing from the expected split"
        );
        assert!(
            !shouldnt.iter().any(|r| &r.path == path),
            "{what}: {path} (warm={warm}) landed in the wrong split"
        );
    }
}

/// One full churn scenario against one policy. Returns (pre-churn reply,
/// post-churn repeat reply, reinfers observed in the contradiction tick).
fn play(
    seed: u64,
    files_mask: (&[(String, u64)], &[bool]),
    churn_aware: bool,
) -> (
    Sim,
    Gbd,
    graybox_icl::gbd::GbdClient,
    Response,
    Response,
    u64,
) {
    let (files, mask) = files_mask;
    let (mut sim, files_on_sim) = boot(files.len(), mask);
    assert_eq!(files, files_on_sim.as_slice(), "boot must be reproducible");
    let mut gbd = daemon(seed, churn_aware);
    let client = gbd.register_tenant("watcher").unwrap();
    let query = Query::FccdClassify {
        files: files.to_vec(),
    };

    // Tick 1: cold inference, cached.
    let t = client.submit(query.clone());
    gbd.serve(&mut sim);
    let first = client.take(t).expect("served");
    assert!(!first.from_cache);

    // The oracle flips residency behind the daemon: the complement of
    // the original warm set is re-warmed, everything else evicted.
    let flipped: Vec<(String, u64)> = files
        .iter()
        .zip(mask)
        .filter(|(_, &m)| !m)
        .map(|(f, _)| f.clone())
        .collect();
    scenario::churn(&mut sim, &flipped);

    // Tick 2: an overlapping probe pass with a *different* cache key —
    // the same files in reverse order — executes fresh and hands the
    // staleness policy verdicts that contradict the cached entry.
    let mut reversed = files.to_vec();
    reversed.reverse();
    let t = client.submit(Query::FccdClassify { files: reversed });
    let tick = gbd.serve(&mut sim);
    let _ = client.take(t).expect("served");
    let reinfers = tick.reinfers as u64;

    // Tick 3: the tenant repeats the original query, still inside TTL.
    let t = client.submit(query);
    gbd.serve(&mut sim);
    let repeat = client.take(t).expect("served");
    (sim, gbd, client, first, repeat, reinfers)
}

#[test]
fn churn_aware_reinfers_while_ttl_only_serves_stale_until_expiry() {
    check(
        "churn_aware_reinfers_while_ttl_only_serves_stale_until_expiry",
        4,
        |g: &mut Gen| {
            let seed = g.u64(1..u64::MAX);
            let nfiles = 4usize;
            // At least one warm and one cold file on each side of the
            // flip, so both classifications have two real classes.
            let mut mask = vec![false; nfiles];
            let warm_a = g.range(0usize..nfiles);
            let warm_b = (warm_a + 1 + g.range(0usize..nfiles - 1)) % nfiles;
            mask[warm_a] = true;
            mask[warm_b] = true;
            let flipped: Vec<bool> = mask.iter().map(|&m| !m).collect();
            let (_, files) = boot(nfiles, &mask);

            // Churn-aware: the contradiction tick evicts and re-infers,
            // so the repeat query hits a cache entry that answers the
            // *flipped* truth — long before TTL expiry.
            let (_, gbd, _, first, repeat, reinfers) = play(seed, (&files, &mask), true);
            assert_matches_mask(&first, &files, &mask, "churn-aware pre-churn");
            assert!(
                reinfers >= 1,
                "contradicted entry must re-infer in the churn tick"
            );
            assert!(repeat.from_cache, "re-inferred entry must serve the repeat");
            assert_matches_mask(&repeat, &files, &flipped, "churn-aware post-churn");
            assert!(gbd.stats().invalidated >= 1);

            // TTL-only: churn is invisible — the repeat inside TTL is the
            // stale pre-churn answer, bit-identical to the first reply.
            let (mut sim, mut gbd, client, first, repeat, reinfers) =
                play(seed, (&files, &mask), false);
            assert_eq!(reinfers, 0, "TTL-only must not react to churn");
            assert!(repeat.from_cache);
            assert_eq!(
                first.reply, repeat.reply,
                "TTL-only must serve the stale answer verbatim inside TTL"
            );
            assert_matches_mask(&repeat, &files, &mask, "TTL-only stale");

            // ...until the virtual clock passes the TTL: the entry
            // expires and a fresh execution answers the flipped truth.
            sim.run_one(|os| {
                use graybox_icl::graybox::os::GrayBoxOs;
                os.sleep(TTL + GrayDuration::from_secs(1));
            });
            let t = client.submit(Query::FccdClassify {
                files: files.clone(),
            });
            gbd.serve(&mut sim);
            let expired = client.take(t).expect("served");
            assert!(!expired.from_cache, "expired entry must re-execute");
            assert_matches_mask(&expired, &files, &flipped, "TTL-only post-expiry");
            assert!(gbd.stats().expired >= 1);
        },
    );
}
