//! Covert-channel determinism and acceptance pins (DESIGN.md §17).
//!
//! The ISSUE's acceptance criteria for the covert subsystem, as
//! integration tests over the umbrella crate:
//!
//! - reruns of a cell or a whole grid are **bit-identical**, regardless
//!   of pool worker count;
//! - the **oracle join** is live: the scored errors come from comparing
//!   the receiver's decode against the seed-regenerated message, so a
//!   quiet cell is error-free and the decoded bits follow the seed;
//! - on the quiet platform with no defender, **BER is zero** for both
//!   the FCCD (page-cache) and WBD (dirty-residue) channels;
//! - defenders **measurably degrade** capacity, and the degradation is
//!   channel-shaped: noise hurts both channels, the eager flusher kills
//!   the write-side channel while leaving the read-side one intact.

use graybox_icl::covert::{
    grid_digest, message_bits, run_grid, ChannelKind, ChannelSpec, CovertGridConfig, DefenderKind,
};
use graybox_icl::simos::Platform;
use graybox_icl::toolbox::pool::Pool;
use graybox_icl::toolbox::GrayDuration;

/// The demo's cell shape: 16 bits, 50 ms slots, 4-page groups.
fn cell(channel: ChannelKind, defender: DefenderKind, seed: u64) -> ChannelSpec {
    ChannelSpec {
        index: 0,
        platform: Platform::LinuxLike,
        channel,
        defender,
        bits: 16,
        slot: GrayDuration::from_millis(50),
        pages_per_bit: 4,
        seed,
    }
}

#[test]
fn grid_reruns_are_bit_identical_across_worker_counts() {
    let cfg = CovertGridConfig::smoke();
    let serial = run_grid(&cfg, &Pool::with_workers(1));
    let rerun = run_grid(&cfg, &Pool::with_workers(1));
    let parallel = run_grid(&cfg, &Pool::with_workers(3));

    assert_eq!(serial, rerun, "same config must replay bit for bit");
    assert_eq!(serial, parallel, "worker count must not leak into scores");
    assert_eq!(grid_digest(&serial), grid_digest(&parallel));
    assert_eq!(serial.len(), cfg.cells());
    for cell in &serial {
        let score = cell.as_ref().expect("no cell may panic");
        assert_eq!(
            score.late_wakeups, 0,
            "{}: slotted run overran",
            score.label
        );
        assert!(score.virtual_ns > 0, "{}: empty run", score.label);
    }
}

#[test]
fn quiet_cells_decode_error_free_on_both_channels() {
    for channel in [ChannelKind::Fccd, ChannelKind::Wbd] {
        let score = cell(channel, DefenderKind::Idle, 0x00DE_C0DE).run();
        assert_eq!(score.errors, 0, "{}: quiet cell must be clean", score.label);
        assert_eq!(score.ber, 0.0, "{}", score.label);
        assert!(
            (score.capacity_bps - score.raw_bps).abs() < 1e-9,
            "{}: error-free capacity is the raw rate",
            score.label
        );
        assert_eq!(
            score.defender_work_ns, 0,
            "{}: idle defender must be free",
            score.label
        );
    }
}

#[test]
fn oracle_join_follows_the_seed() {
    // The receiver never sees the message directly — it decodes shared OS
    // state and the scorer joins against `message_bits(seed, n)`. If that
    // join is live, (a) the message length matches the scored bit count,
    // (b) an identical seed replays to an identical digest (the digest
    // folds every received bit), and (c) a different seed steers the
    // transmitter to different state and hence a different decode.
    let a1 = cell(ChannelKind::Fccd, DefenderKind::Idle, 0x00DE_C0DE).run();
    let a2 = cell(ChannelKind::Fccd, DefenderKind::Idle, 0x00DE_C0DE).run();
    let b = cell(ChannelKind::Fccd, DefenderKind::Idle, 0x00DD_BA11).run();

    assert_eq!(message_bits(0x00DE_C0DE, 16).len() as u64, a1.bits);
    assert_eq!(a1, a2, "identical seed must replay bit for bit");
    assert_ne!(
        message_bits(0x00DE_C0DE, 16),
        message_bits(0x00DD_BA11, 16),
        "test needs two distinct messages"
    );
    assert_ne!(
        a1.digest, b.digest,
        "a different message must reach the receiver as different bits"
    );
    // Both quiet cells decode clean, so received == sent on each side:
    // the digests differ exactly because the joined oracles differ.
    assert_eq!(a1.errors, 0);
    assert_eq!(b.errors, 0);
}

#[test]
fn defenders_measurably_degrade_capacity() {
    let quiet_fccd = cell(ChannelKind::Fccd, DefenderKind::Idle, 0x00DE_C0DE).run();
    let quiet_wbd = cell(ChannelKind::Wbd, DefenderKind::Idle, 0x00DE_C0DE).run();

    // Noise is channel-agnostic: random touches both pollute the page
    // cache (FCCD) and dirty pages (WBD).
    for (quiet, channel) in [
        (&quiet_fccd, ChannelKind::Fccd),
        (&quiet_wbd, ChannelKind::Wbd),
    ] {
        let noisy = cell(channel, DefenderKind::Noise, 0x00DE_C0DE).run();
        assert!(noisy.errors > 0, "{}: noise must flip bits", noisy.label);
        assert!(
            noisy.capacity_bps < quiet.capacity_bps,
            "{}: capacity {:.1} must drop below quiet {:.1}",
            noisy.label,
            noisy.capacity_bps,
            quiet.capacity_bps
        );
        assert!(
            noisy.defender_work_ns > 0,
            "{}: defense costs time",
            noisy.label
        );
    }

    // The eager flusher is channel-shaped: it erases dirty-page residue
    // (the WBD signal) but leaves page-cache residency (FCCD) alone.
    let flushed_wbd = cell(ChannelKind::Wbd, DefenderKind::EagerFlush, 0x00DE_C0DE).run();
    assert!(
        flushed_wbd.capacity_bps < quiet_wbd.capacity_bps,
        "eager flush must degrade the write-side channel"
    );
    let flushed_fccd = cell(ChannelKind::Fccd, DefenderKind::EagerFlush, 0x00DE_C0DE).run();
    assert_eq!(
        flushed_fccd.errors, 0,
        "eager flush must not touch the read-side channel"
    );
}
