//! Host-parallel scenario-matrix determinism (`simos::scenario::matrix`
//! through `gray_toolbox::pool`).
//!
//! The matrix's contract is that the *host* worker count is invisible to
//! the *simulated* results: every cell is a self-seeded virtual-time
//! simulation sharing nothing mutable with its siblings, so the scored
//! grid — every digest, every score, every makespan — must be identical
//! for 1, 2, or 8 workers. These PROP_SEED-replayable properties pin
//! that, plus the failure half of the contract: a panicking cell becomes
//! a structured per-cell error in its own slot (index and message
//! preserved, grid order intact) while its siblings complete normally
//! under every worker count.
//!
//! Replay a failing case from the harness banner:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q --test matrix_determinism
//! PROP_CASES=20 cargo test -q --test matrix_determinism
//! ```

use graybox_icl::simos::scenario::matrix::{grid_digest, run_grid, MatrixConfig, WorkloadMix};
use graybox_icl::simos::Platform;
use graybox_icl::toolbox::pool::Pool;
use graybox_icl::toolbox::prop::{check, Gen};

/// A small random grid: 1–2 platforms, random aging/noise/mix axes, tiny
/// corpus. 2–8 cells, so a case stays cheap while still crossing axes.
fn draw_config(g: &mut Gen) -> MatrixConfig {
    let mut platforms = vec![g.select(&[
        Platform::LinuxLike,
        Platform::NetBsdLike,
        Platform::SolarisLike,
    ])];
    if g.bool() {
        platforms.push(Platform::LinuxLike);
        platforms.dedup();
    }
    MatrixConfig {
        platforms,
        aging: if g.bool() {
            vec![false, true]
        } else {
            vec![g.bool()]
        },
        noise_amps: vec![g.f64(0.0..0.2)],
        mixes: vec![g.select(&[WorkloadMix::ProbeHeavy, WorkloadMix::ChurnHeavy])],
        fleet_sizes: vec![g.usize(2..5)],
        seed: g.u64(0..u64::MAX),
        disks: 2,
        files_per_disk: 2,
        file_bytes: 16 << 10,
    }
}

#[test]
fn grid_is_worker_count_invariant_for_random_configs() {
    check("matrix_worker_invariance", 6, |g: &mut Gen| {
        let cfg = draw_config(g);
        let serial = run_grid(&cfg, &Pool::with_workers(1));
        assert_eq!(serial.len(), cfg.cells());
        for workers in [2, 8] {
            let parallel = run_grid(&cfg, &Pool::with_workers(workers));
            assert_eq!(serial, parallel, "{workers}-worker grid diverged");
            assert_eq!(grid_digest(&serial), grid_digest(&parallel));
        }
        for cell in &serial {
            let c = cell.as_ref().expect("no cell panics in this property");
            assert!(c.virtual_ns > 0, "cells must consume virtual time");
        }
    });
}

#[test]
fn injected_panic_is_contained_to_its_cell() {
    check("matrix_panic_containment", 4, |g: &mut Gen| {
        let cfg = draw_config(g);
        let specs = cfg.expand();
        let victim = g.usize(0..specs.len());
        let clean = run_grid(&cfg, &Pool::with_workers(1));
        for workers in [1, 2, 8] {
            let got = Pool::with_workers(workers).map(specs.clone(), |idx, spec| {
                if idx == victim {
                    panic!("injected failure in cell {idx}");
                }
                spec.run()
            });
            assert_eq!(got.len(), specs.len(), "grid order and length intact");
            for (idx, slot) in got.iter().enumerate() {
                if idx == victim {
                    let err = slot.as_ref().expect_err("victim cell must error");
                    assert_eq!(err.index, victim);
                    assert!(
                        err.message
                            .contains(&format!("injected failure in cell {idx}")),
                        "panic message preserved: {}",
                        err.message
                    );
                } else {
                    assert_eq!(
                        slot.as_ref().expect("sibling cells unaffected"),
                        clean[idx].as_ref().expect("clean run has no panics"),
                        "sibling cell {idx} diverged under {workers} workers"
                    );
                }
            }
        }
    });
}
