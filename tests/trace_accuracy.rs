//! Tier-1 accuracy pin: the trace-event/oracle join must score a fully
//! determined scenario exactly.
//!
//! A noise-free simulated machine gets a corpus whose residency is forced
//! by construction (half the files re-read after a flush, half left
//! cold), so FCCD's verdicts — emitted as `Classified` trace events and
//! joined against the oracle by `simos::score` — have an exactly
//! computable confusion matrix: all six files right, precision and recall
//! both 1.0. MAC's availability estimate on the same idle machine must
//! land within 10% of the oracle's free-page count — the bar the paper's
//! "reliably returns (830 − x) MB" claim sets.

use graybox_icl::apps::workload::make_files;
use graybox_icl::graybox::fccd::{Fccd, FccdParams};
use graybox_icl::graybox::mac::{Mac, MacParams};
use graybox_icl::graybox::os::GrayBoxOs;
use graybox_icl::simos::score::{score_fccd, score_mac};
use graybox_icl::simos::{Sim, SimConfig};
use graybox_icl::toolbox::trace;

const FILES: usize = 6;
const FILE_BYTES: u64 = 512 << 10;

fn fccd_params() -> FccdParams {
    FccdParams {
        access_unit: 1 << 20,
        prediction_unit: 256 << 10,
        ..FccdParams::default()
    }
}

#[test]
fn fccd_verdicts_score_exactly_against_the_oracle() {
    let cap = trace::capture();
    let mut sim = Sim::new(SimConfig::small().without_noise());
    let paths = sim.run_one(|os| make_files(os, "/acc", FILES, FILE_BYTES).unwrap());
    sim.flush_file_cache();
    let warm: Vec<String> = paths.iter().step_by(2).cloned().collect();
    let warm_count = warm.len() as u64;
    sim.run_one(move |os| {
        for p in &warm {
            let fd = os.open(p).unwrap();
            os.read_discard(fd, 0, FILE_BYTES).unwrap();
            os.close(fd).unwrap();
        }
    });
    let probe_paths = paths.clone();
    sim.run_one(move |os| Fccd::with_fixed_seed(os, fccd_params()).classify_files(&probe_paths));

    // No lane filtering: Classified events fire on sim-proc lanes, and
    // the scorer already ignores every foreign event shape.
    let records = trace::drain();
    drop(cap);
    let score = score_fccd(&sim.oracle(), &records);
    assert_eq!(
        score.scored(),
        FILES as u64,
        "every file must produce one joinable verdict: {score:?}"
    );
    assert_eq!(score.true_positives, warm_count, "{score:?}");
    assert_eq!(score.true_negatives, FILES as u64 - warm_count, "{score:?}");
    assert_eq!(score.precision(), 1.0, "{score:?}");
    assert_eq!(score.recall(), 1.0, "{score:?}");
}

#[test]
fn mac_estimate_lands_within_ten_percent_of_oracle_truth() {
    let cap = trace::capture();
    let mut sim = Sim::new(SimConfig::small().without_noise());
    let oracle = sim.oracle();
    let truth_bytes = (oracle
        .total_pages()
        .saturating_sub(oracle.resident_pages() as u64)
        * 4096) as f64;
    let ceiling = oracle.total_pages() * 4096 * 2;
    sim.run_one(move |os| {
        let mac = Mac::new(
            os,
            MacParams {
                initial_increment: 1 << 20,
                max_increment: 4 << 20,
                ..MacParams::default()
            },
        );
        mac.available_estimate(ceiling).unwrap()
    });
    let records = trace::drain();
    drop(cap);
    let score = score_mac(&records, truth_bytes).expect("MAC probe emits its estimate");
    assert!(
        score.abs_error() <= 0.10,
        "MAC estimate {:.0} vs oracle free {:.0}: {:.1}% off",
        score.estimated_bytes,
        score.truth_bytes,
        score.abs_error() * 100.0
    );
}
