//! Events-vs-threads executor equivalence (`simos::ExecBackend`).
//!
//! The event-driven executor's whole correctness claim is that it is the
//! *same simulation* as the thread-backed one: both ask the kernel for
//! the minimum-(virtual time, pid) runnable process at the same decision
//! points, so the kernel call sequence — and with it every charged
//! duration, every noise draw, every file-cache transition, and every
//! final clock — must agree **bit for bit**. These properties pin that
//! claim across PROP_SEED-replayable random workloads, with timing noise
//! on, at three levels:
//!
//! 1. raw syscall soup: random multi-process programs over shared files,
//!    compared by per-process observation digests and final clocks;
//! 2. the paper's FCCD fleet path through `gray-sched` waves: ranks,
//!    cached/uncached classification splits, and the separation score
//!    compared to the last bit;
//! 3. panic propagation: a dying process yields the same structured
//!    [`ProcPanic`] (pid, name, message) and leaves the same clock.
//!
//! Replay a failing case from the harness banner:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q --test exec_equivalence
//! PROP_CASES=50 cargo test -q --test exec_equivalence
//! ```

use graybox_icl::apps::workload::make_file;
use graybox_icl::graybox::fccd::{classify_ranks, FccdParams};
use graybox_icl::graybox::os::{GrayBoxOs, ProbeSpec};
use graybox_icl::sched::{FccdFleet, SchedConfig, Scheduler, SimExecutor};
use graybox_icl::simos::exec::Workload;
use graybox_icl::simos::{ExecBackend, Sim, SimConfig, SimProc};
use graybox_icl::toolbox::prop::{check, Gen};
use graybox_icl::toolbox::GrayDuration;

fn fnv(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x100_0000_01b3);
}

/// One step of a random per-process program. Programs are drawn once per
/// case and interpreted under both backends, so any divergence is the
/// executor's.
#[derive(Debug, Clone)]
enum Op {
    Compute(u64),
    Sleep(u64),
    Write { f: usize, off: u64, len: u64 },
    Read { f: usize, off: u64, len: u64 },
    Probe { f: usize, offs: Vec<u64> },
    Stat(usize),
    Yield,
}

const SOUP_FILES: usize = 4;
const SOUP_FILE_BYTES: u64 = 256 << 10;

fn draw_program(g: &mut Gen) -> Vec<Op> {
    g.vec(4..14, |g| match g.usize(0..7) {
        0 => Op::Compute(g.u64(10..500)),
        1 => Op::Sleep(g.u64(10..800)),
        2 => Op::Write {
            f: g.usize(0..SOUP_FILES),
            off: g.u64(0..SOUP_FILE_BYTES - 4096),
            len: g.u64(1..16) * 4096,
        },
        3 => Op::Read {
            f: g.usize(0..SOUP_FILES),
            off: g.u64(0..SOUP_FILE_BYTES - 4096),
            len: g.u64(1..16) * 4096,
        },
        4 => Op::Probe {
            f: g.usize(0..SOUP_FILES),
            offs: g.vec(1..6, |g| g.u64(0..SOUP_FILE_BYTES)),
        },
        5 => Op::Stat(g.usize(0..SOUP_FILES)),
        _ => Op::Yield,
    })
}

/// Interprets a program, folding every observation (clock reads, probe
/// timings, byte counts) into one digest. Any scheduling difference
/// between backends perturbs some process's clock and shows up here.
fn interpret(os: &SimProc, program: &[Op]) -> u64 {
    let paths: Vec<String> = (0..SOUP_FILES).map(|i| format!("/s{i}")).collect();
    let fds: Vec<_> = paths.iter().map(|p| os.open(p).unwrap()).collect();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for op in program {
        match op {
            Op::Compute(us) => os.compute(GrayDuration::from_micros(*us)),
            Op::Sleep(us) => os.sleep(GrayDuration::from_micros(*us)),
            Op::Write { f, off, len } => {
                let len = (*len).min(SOUP_FILE_BYTES - off);
                fnv(&mut h, os.write_fill(fds[*f], *off, len).unwrap());
            }
            Op::Read { f, off, len } => {
                let len = (*len).min(SOUP_FILE_BYTES - off);
                fnv(&mut h, os.read_discard(fds[*f], *off, len).unwrap());
            }
            Op::Probe { f, offs } => {
                let specs: Vec<ProbeSpec> =
                    offs.iter().map(|&offset| ProbeSpec { offset }).collect();
                for s in os.probe_batch(fds[*f], &specs) {
                    fnv(&mut h, s.elapsed.as_nanos());
                    fnv(&mut h, s.ok as u64);
                }
            }
            Op::Stat(f) => {
                let st = os.stat(&paths[*f]).unwrap();
                fnv(&mut h, st.size);
                fnv(&mut h, st.atime.as_nanos());
            }
            Op::Yield => os.yield_now(),
        }
        fnv(&mut h, os.now().as_nanos());
    }
    for fd in fds {
        os.close(fd).unwrap();
    }
    h
}

#[test]
fn random_syscall_soup_is_bit_identical_across_backends() {
    check(
        "random_syscall_soup_is_bit_identical_across_backends",
        10,
        |g: &mut Gen| {
            let seed = g.u64(1..u64::MAX);
            let programs: Vec<Vec<Op>> = (0..g.usize(3..9)).map(|_| draw_program(g)).collect();

            let run = |exec: ExecBackend| {
                // Noise stays ON: the noise stream is part of the kernel
                // call sequence, so it must stay in step too.
                let mut sim = Sim::new(SimConfig::small().with_seed(seed).with_exec(exec));
                sim.run_one(|os| {
                    for i in 0..SOUP_FILES {
                        make_file(os, &format!("/s{i}"), SOUP_FILE_BYTES).unwrap();
                    }
                });
                sim.flush_file_cache();
                let workloads: Vec<(String, Workload<'_, u64>)> = programs
                    .iter()
                    .enumerate()
                    .map(|(i, program)| {
                        let program = program.clone();
                        let w: Workload<'_, u64> =
                            Box::new(move |os: &SimProc| interpret(os, &program));
                        (format!("p{i}"), w)
                    })
                    .collect();
                let digests = sim.run(workloads);
                (digests, sim.now())
            };

            let events = run(ExecBackend::Events);
            let threads = run(ExecBackend::Threads);
            assert_eq!(
                events.0, threads.0,
                "per-process observation digests diverge"
            );
            assert_eq!(events.1, threads.1, "final virtual clocks diverge");
        },
    );
}

#[test]
fn fccd_fleet_classifies_bit_identically_across_backends() {
    check(
        "fccd_fleet_classifies_bit_identically_across_backends",
        6,
        |g: &mut Gen| {
            let access_unit = 1u64 << 20;
            let params = FccdParams {
                access_unit,
                prediction_unit: 256 << 10,
                probe_rounds: g.range(1u32..3),
                seed: g.u64(1..u64::MAX),
                ..FccdParams::default()
            };
            let nfiles = g.range(3usize..6);
            let files: Vec<(String, u64)> = (0..nfiles)
                .map(|i| (format!("/f{i}"), g.u64(1..4) * access_unit))
                .collect();
            let warm: Vec<Vec<u64>> = files
                .iter()
                .map(|(_, size)| (0..size / access_unit).filter(|_| g.bool()).collect())
                .collect();
            // Concurrency > 1 so plan processes genuinely interleave —
            // that is exactly the regime the coroutine driver must get
            // right.
            let concurrency = g.range(2usize..5);

            let run = |exec: ExecBackend| {
                let mut sim = Sim::new(SimConfig::small().with_exec(exec));
                let setup = files.clone();
                sim.run_one(move |os| {
                    for (path, size) in &setup {
                        make_file(os, path, *size).unwrap();
                    }
                });
                sim.flush_file_cache();
                let warm_files: Vec<(String, Vec<u64>)> = files
                    .iter()
                    .zip(&warm)
                    .map(|((p, _), u)| (p.clone(), u.clone()))
                    .collect();
                sim.run_one(move |os| {
                    for (path, units) in &warm_files {
                        let fd = os.open(path).unwrap();
                        for &u in units {
                            os.read_discard(fd, u * access_unit, access_unit).unwrap();
                        }
                        os.close(fd).unwrap();
                    }
                });
                let params = params.clone();
                let fleet = sim.run_one(move |os| FccdFleet::with_fixed_seed(os, params, 0));
                let mut sched = Scheduler::new(SchedConfig {
                    concurrency,
                    ..SchedConfig::default()
                });
                let mut exec = SimExecutor::new(&mut sim);
                let ranks = fleet.order_files(&mut sched, &mut exec, &files);
                (ranks, sim.now())
            };

            let (ranks_e, clock_e) = run(ExecBackend::Events);
            let (ranks_t, clock_t) = run(ExecBackend::Threads);
            assert_eq!(ranks_e, ranks_t, "fleet ranks diverge");
            assert_eq!(clock_e, clock_t, "final virtual clocks diverge");
            let (ce, ct) = (classify_ranks(ranks_e), classify_ranks(ranks_t));
            assert_eq!(ce.cached, ct.cached, "cached split diverges");
            assert_eq!(ce.uncached, ct.uncached, "uncached split diverges");
            assert_eq!(
                ce.separation.to_bits(),
                ct.separation.to_bits(),
                "separation score diverges: {} vs {}",
                ce.separation,
                ct.separation
            );
        },
    );
}

#[test]
fn panic_propagation_is_equivalent_across_backends() {
    check(
        "panic_propagation_is_equivalent_across_backends",
        8,
        |g: &mut Gen| {
            let seed = g.u64(1..u64::MAX);
            let n = g.usize(2..6);
            let victim = g.usize(0..n);
            let victim_work = g.u64(1..2_000);

            let run = |exec: ExecBackend| {
                let mut sim = Sim::new(SimConfig::small().with_seed(seed).with_exec(exec));
                let workloads: Vec<(String, Workload<'_, u64>)> = (0..n)
                    .map(|i| {
                        let w: Workload<'_, u64> = Box::new(move |os: &SimProc| {
                            os.compute(GrayDuration::from_micros(500));
                            if i == victim {
                                os.compute(GrayDuration::from_micros(victim_work));
                                panic!("victim {i} went down");
                            }
                            os.compute(GrayDuration::from_micros(500));
                            os.now().as_nanos()
                        });
                        (format!("p{i}"), w)
                    })
                    .collect();
                let err = sim.try_run(workloads).unwrap_err();
                (err.pid, err.name, err.message, sim.now())
            };

            let events = run(ExecBackend::Events);
            let threads = run(ExecBackend::Threads);
            assert_eq!(events, threads, "structured panic or clock diverges");
            assert_eq!(events.1, format!("p{victim}"));
            assert!(events.2.contains("went down"));
        },
    );
}
