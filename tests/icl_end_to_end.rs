//! Cross-crate integration tests: the ICLs driving the simulated OS end
//! to end, scored against the oracle they never see.

use graybox_icl::apps::workload::{make_file, make_files};
use graybox_icl::graybox::fccd::{Fccd, FccdParams};
use graybox_icl::graybox::fldc::{Fldc, RefreshOrder};
use graybox_icl::graybox::mac::{Mac, MacParams};
use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
use graybox_icl::simos::{Platform, Sim, SimConfig};

fn small_fccd() -> FccdParams {
    FccdParams {
        access_unit: 2 << 20,
        prediction_unit: 512 << 10,
        ..FccdParams::default()
    }
}

#[test]
fn fccd_inference_matches_oracle_ground_truth() {
    let mut sim = Sim::new(SimConfig::small());
    let size = 32u64 << 20;
    sim.run_one(|os| make_file(os, "/truth", size).unwrap());
    sim.flush_file_cache();
    // Warm an irregular set of 2 MB access units.
    let warm_units: Vec<u64> = vec![1, 2, 6, 9, 13];
    {
        let warm = warm_units.clone();
        sim.run_one(move |os| {
            let fd = os.open("/truth").unwrap();
            for u in warm {
                os.read_discard(fd, u * (2 << 20), 2 << 20).unwrap();
            }
            os.close(fd).unwrap();
        });
    }
    // Probe, then compare the fastest-ranked units against the oracle.
    let report = sim.run_one(|os| {
        let fccd = Fccd::new(os, small_fccd());
        let fd = os.open("/truth").unwrap();
        let r = fccd.probe_file(fd, size);
        os.close(fd).unwrap();
        r
    });
    let mut ranked: Vec<&graybox_icl::graybox::fccd::UnitProbe> = report.units.iter().collect();
    ranked.sort_by_key(|u| u.probe_time);
    let predicted: Vec<u64> = ranked[..warm_units.len()]
        .iter()
        .map(|u| u.offset / (2 << 20))
        .collect();
    let hits = predicted.iter().filter(|u| warm_units.contains(u)).count();
    assert!(
        hits >= warm_units.len() - 1,
        "FCCD must identify the warm units: predicted {predicted:?}, truth {warm_units:?}"
    );
}

#[test]
fn fccd_positive_feedback_stabilizes_over_runs() {
    // Repeated gray-box scans should converge: per-run time settles well
    // below the all-disk first run.
    let mut sim = Sim::new(SimConfig::small());
    let size = 64u64 << 20;
    sim.run_one(|os| make_file(os, "/fb", size).unwrap());
    sim.flush_file_cache();
    let mut times = Vec::new();
    for _ in 0..5 {
        let t = sim.run_one(|os| {
            gray_apps::scan::graybox_scan(os, "/fb", small_fccd(), 1 << 20)
                .unwrap()
                .elapsed
        });
        times.push(t.as_secs_f64());
    }
    let steady = &times[1..];
    let best = steady.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = steady.iter().cloned().fold(0.0, f64::max);
    assert!(
        worst < times[0] * 0.8,
        "warm runs must beat the cold run: {times:?}"
    );
    // Which ~8 MB tail misses varies with the per-run random probe
    // offsets, so steady state has real variance; it must stay bounded.
    assert!(
        worst / best < 2.5,
        "steady-state runs should be roughly stable: {times:?}"
    );
}

#[test]
fn fldc_inumber_order_matches_physical_layout() {
    let mut sim = Sim::new(SimConfig::small());
    let paths = sim.run_one(|os| make_files(os, "/laid", 30, 8 << 10).unwrap());
    // The oracle's block addresses must be monotone in FLDC's ordering.
    let ordered = sim.run_one({
        let paths = paths.clone();
        move |os| {
            let (ranks, missing) = Fldc::new(os).order_by_inumber(&paths);
            assert_eq!(missing, 0);
            ranks.into_iter().map(|r| r.path).collect::<Vec<_>>()
        }
    });
    let oracle = sim.oracle();
    let mut last_block = 0u64;
    for path in &ordered {
        let blocks = oracle.file_blocks(path).unwrap();
        assert!(
            blocks[0] > last_block,
            "layout must be monotone in i-number order on a fresh directory"
        );
        last_block = blocks[0];
    }
}

#[test]
fn fldc_refresh_restores_monotone_layout_after_churn() {
    use gray_toolbox::rng::SeedableRng;
    use gray_toolbox::rng::StdRng;
    let mut sim = Sim::new(SimConfig::small());
    sim.run_one(|os| make_files(os, "/churned", 40, 8 << 10).unwrap());
    let mut rng = StdRng::seed_from_u64(11);
    for epoch in 0..6 {
        sim.run_one(|os| {
            graybox_icl::apps::workload::age_epoch(os, "/churned", 6, 8 << 10, epoch, &mut rng)
                .unwrap();
        });
    }
    // Aged: count inversions in block order under i-number ordering.
    let inversions = |sim: &mut Sim| -> usize {
        let ordered: Vec<String> = sim.run_one(|os| {
            let ranks = Fldc::new(os).order_directory("/churned").unwrap();
            ranks.into_iter().map(|r| r.path).collect()
        });
        let oracle = sim.oracle();
        let firsts: Vec<u64> = ordered
            .iter()
            .map(|p| oracle.file_blocks(p).unwrap()[0])
            .collect();
        firsts.windows(2).filter(|w| w[1] < w[0]).count()
    };
    let aged = inversions(&mut sim);
    assert!(aged > 0, "churn must decorrelate layout");
    sim.run_one(|os| {
        Fldc::new(os)
            .refresh_directory("/churned", RefreshOrder::SmallestFirst)
            .unwrap()
    });
    let refreshed = inversions(&mut sim);
    assert_eq!(refreshed, 0, "refresh must restore monotone layout");
}

#[test]
fn fldc_refresh_preserves_every_byte() {
    let mut sim = Sim::new(SimConfig::small());
    sim.run_one(|os| {
        os.mkdir("/precious").unwrap();
        for i in 0..10 {
            let body = format!("file {i} body {}", "x".repeat(i * 100));
            os.write_file(&format!("/precious/f{i}"), body.as_bytes())
                .unwrap();
        }
        Fldc::new(os)
            .refresh_directory("/precious", RefreshOrder::SmallestFirst)
            .unwrap();
        for i in 0..10 {
            let body = format!("file {i} body {}", "x".repeat(i * 100));
            assert_eq!(
                os.read_to_vec(&format!("/precious/f{i}")).unwrap(),
                body.as_bytes(),
                "content must survive the refresh"
            );
        }
    });
}

#[test]
fn mac_returns_total_minus_competitor_usage() {
    // The paper: "if one process allocates x MB of data and accesses it
    // [...] then MAC reliably returns (830 - x) MB to a competing
    // application". Scaled: usable = 56 MB.
    let sim = Sim::new(SimConfig::small());
    let usable = sim.oracle().total_pages() * 4096;
    for x_frac in [0.2f64, 0.4] {
        let mut sim = Sim::new(SimConfig::small());
        let x = (usable as f64 * x_frac) as u64 / 4096 * 4096;
        let estimates = sim.run::<u64>(vec![
            (
                "competitor".to_string(),
                Box::new(move |os: &graybox_icl::simos::SimProc| {
                    let r = os.mem_alloc(x).unwrap();
                    let pages = x / 4096;
                    // Touch and keep touching: an *active* working set.
                    for round in 0..40 {
                        for p in 0..pages {
                            os.mem_touch_write(r, p).unwrap();
                        }
                        let _ = round;
                    }
                    0
                }),
            ),
            (
                "prober".to_string(),
                Box::new(move |os: &graybox_icl::simos::SimProc| {
                    // Give the competitor time to establish residency.
                    os.sleep(gray_toolbox::GrayDuration::from_millis(50));
                    let mac = Mac::new(
                        os,
                        MacParams {
                            initial_increment: 1 << 20,
                            max_increment: 8 << 20,
                            ..MacParams::default()
                        },
                    );
                    mac.available_estimate(usable * 2).unwrap()
                }),
            ),
        ]);
        let est = estimates[1];
        let expected = usable - x;
        let ratio = est as f64 / expected as f64;
        assert!(
            (0.45..=1.3).contains(&ratio),
            "x = {} MB: estimate {} MB, expected ~{} MB",
            x >> 20,
            est >> 20,
            expected >> 20
        );
    }
}

#[test]
fn mac_admission_prevents_thrashing_under_competition() {
    // Two processes each want "everything": with MAC, neither thrashes.
    let mut sim = Sim::new(SimConfig::small());
    let usable = sim.oracle().total_pages() * 4096;
    let results = sim.run::<u64>(
        (0..2)
            .map(|i| {
                let name = format!("worker{i}");
                let wl: graybox_icl::simos::exec::Workload<'_, u64> =
                    Box::new(move |os: &graybox_icl::simos::SimProc| {
                        let mac = Mac::new(
                            os,
                            MacParams {
                                initial_increment: 1 << 20,
                                max_increment: 8 << 20,
                                max_retries: 20,
                                ..MacParams::default()
                            },
                        );
                        let mut total_work = 0u64;
                        for _pass in 0..3 {
                            let alloc = loop {
                                match mac.gb_alloc(4 << 20, usable, 4096).unwrap() {
                                    Some(a) => break a,
                                    None => os.sleep(gray_toolbox::GrayDuration::from_millis(100)),
                                }
                            };
                            let pages = alloc.bytes / 4096;
                            for p in 0..pages {
                                os.mem_touch_write(alloc.region, p).unwrap();
                            }
                            total_work += pages;
                            mac.gb_free(alloc).unwrap();
                        }
                        total_work
                    });
                (name, wl)
            })
            .collect(),
    );
    assert!(results.iter().all(|&w| w > 0));
    let stats = sim.oracle().stats();
    // Bounded collateral from probing is fine; thrashing is not. Under
    // thrash, swap traffic rivals the demand-zero fault count (a broken
    // MAC measured 35k swap-outs here); healthy admission keeps it to a
    // few percent.
    assert!(
        stats.swap_outs < stats.zero_faults / 20,
        "admission control must prevent thrashing: {stats:?}"
    );
}

#[test]
fn platform_personalities_behave_differently() {
    // The same warm rescan on the three personalities must show their
    // signature behaviors.
    let size = 16u64 << 20; // Exceeds NetBSD's 4.6 MB cache, fits Linux's.
    let mut fractions = Vec::new();
    for platform in [
        Platform::LinuxLike,
        Platform::NetBsdLike,
        Platform::SolarisLike,
    ] {
        let mut sim = Sim::new(SimConfig::small().with_platform(platform));
        sim.run_one(|os| make_file(os, "/p", size).unwrap());
        sim.flush_file_cache();
        sim.run_one(|os| {
            let fd = os.open("/p").unwrap();
            os.read_discard(fd, 0, size).unwrap();
            os.close(fd).unwrap();
        });
        fractions.push(sim.oracle().cached_fraction("/p").unwrap());
    }
    let (linux, netbsd, solaris) = (fractions[0], fractions[1], fractions[2]);
    assert!(linux > 0.95, "Linux caches the whole 16 MB file: {linux}");
    assert!(
        netbsd < 0.5,
        "NetBSD's fixed cache holds a fraction: {netbsd}"
    );
    assert!(
        solaris > 0.95,
        "Solaris caches it too at this size: {solaris}"
    );
}

#[test]
fn gbp_pipeline_equals_library_ordering() {
    let mut sim = Sim::new(SimConfig::small());
    let paths = sim.run_one(|os| make_files(os, "/pipe", 8, 1 << 20).unwrap());
    sim.flush_file_cache();
    sim.run_one({
        let p = paths[3].clone();
        move |os| {
            let fd = os.open(&p).unwrap();
            os.read_discard(fd, 0, 1 << 20).unwrap();
            os.close(fd).unwrap();
        }
    });
    let (lib_order, gbp_order) = sim.run_one({
        let paths = paths.clone();
        move |os| {
            let params = FccdParams {
                access_unit: 1 << 20,
                prediction_unit: 512 << 10,
                ..FccdParams::default()
            };
            let lib: Vec<String> = Fccd::new(os, params.clone())
                .order_files(&paths)
                .into_iter()
                .map(|r| r.path)
                .collect();
            let gbp = graybox_icl::apps::gbp::Gbp::new(os, params)
                .order_files(&paths, graybox_icl::apps::gbp::GbpMode::Mem)
                .unwrap();
            (lib, gbp)
        }
    });
    assert_eq!(lib_order[0], paths[3]);
    assert_eq!(gbp_order[0], paths[3]);
}

#[test]
fn lfs_layout_follows_write_time_not_inumbers() {
    // The paper's §4.2.5 porting note, end to end: on a log-structured
    // file system, i-number order stops predicting layout; modification-
    // time order predicts it instead.
    use graybox_icl::simos::LayoutPolicy;
    let mut sim = Sim::new(SimConfig::small().with_lfs());
    let paths = sim.run_one(|os| make_files(os, "/log", 20, 8 << 10).unwrap());
    // Rewrite the files in a scrambled order: under LFS each rewrite
    // relocates the file's blocks to the log head.
    let rewrite_order = graybox_icl::apps::workload::shuffled(&paths, 0x1F5);
    sim.run_one({
        let order = rewrite_order.clone();
        move |os| {
            for p in &order {
                let fd = os.open(p).unwrap();
                os.write_fill(fd, 0, 8 << 10).unwrap();
                os.close(fd).unwrap();
                // Distinct mtimes for unambiguous ordering.
                os.compute(gray_toolbox::GrayDuration::from_micros(100));
            }
        }
    });
    // Oracle: physical order of first blocks.
    let oracle = sim.oracle();
    let block_of = |p: &String| oracle.file_blocks(p).unwrap()[0];
    let inversions = |order: &[String]| -> usize {
        let firsts: Vec<u64> = order.iter().map(block_of).collect();
        firsts.windows(2).filter(|w| w[1] < w[0]).count()
    };
    let (ino_order, mtime_order) = sim.run_one({
        let paths = paths.clone();
        move |os| {
            let fldc = Fldc::new(os);
            let (ino, _) = fldc.order_by_inumber(&paths);
            let (mtime, _) = fldc.order_by_mtime(&paths);
            (
                ino.into_iter().map(|r| r.path).collect::<Vec<_>>(),
                mtime.into_iter().map(|r| r.path).collect::<Vec<_>>(),
            )
        }
    });
    let ino_inv = inversions(&ino_order);
    let mtime_inv = inversions(&mtime_order);
    assert_eq!(
        mtime_inv, 0,
        "mtime order must match the log layout exactly: {mtime_inv} inversions"
    );
    assert!(
        ino_inv > 3,
        "i-number order must have decorrelated under LFS: only {ino_inv} inversions"
    );
    // And the mtime ordering is measurably faster to read.
    sim.flush_file_cache();
    let t_ino = sim.run_one({
        let order = ino_order.clone();
        move |os| graybox_icl::apps::workload::read_files_in_order(os, &order).unwrap()
    });
    sim.flush_file_cache();
    let t_mtime = sim.run_one({
        let order = mtime_order.clone();
        move |os| graybox_icl::apps::workload::read_files_in_order(os, &order).unwrap()
    });
    assert!(
        t_mtime < t_ino,
        "mtime order must read faster on LFS: {t_mtime} vs {t_ino}"
    );
    // Confirm the config really was LFS (guards against silent default).
    assert_eq!(SimConfig::small().with_lfs().fs.layout, LayoutPolicy::Lfs);
}

#[test]
fn refresh_advisor_fires_under_real_aging() {
    use gray_toolbox::rng::SeedableRng;
    use gray_toolbox::rng::StdRng;
    use graybox_icl::graybox::fldc::RefreshAdvisor;
    let mut sim = Sim::new(SimConfig::small());
    sim.run_one(|os| make_files(os, "/adv", 60, 8 << 10).unwrap());
    let mut advisor = RefreshAdvisor::new(1.8);
    let mut rng = StdRng::seed_from_u64(0xADA);
    let mut fired_at = None;
    for epoch in 0..30u64 {
        if epoch > 0 {
            sim.run_one(|os| {
                graybox_icl::apps::workload::age_epoch(os, "/adv", 6, 8 << 10, epoch, &mut rng)
                    .unwrap();
            });
        }
        sim.flush_file_cache();
        let t = sim.run_one(|os| {
            let ranks = Fldc::new(os).order_directory("/adv").unwrap();
            let order: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
            graybox_icl::apps::workload::read_files_in_order(os, &order).unwrap()
        });
        advisor.record(t.as_secs_f64());
        if advisor.should_refresh() {
            fired_at = Some(epoch);
            break;
        }
    }
    let epoch = fired_at.expect("aging must eventually trigger the advisor");
    assert!(
        (2..30).contains(&epoch),
        "advisor fired implausibly early/late: epoch {epoch}"
    );
    // Acting on the advice restores performance.
    sim.run_one(|os| {
        Fldc::new(os)
            .refresh_directory("/adv", RefreshOrder::SmallestFirst)
            .unwrap()
    });
    advisor.reset_after_refresh();
    sim.flush_file_cache();
    let t_after = sim.run_one(|os| {
        let ranks = Fldc::new(os).order_directory("/adv").unwrap();
        let order: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
        graybox_icl::apps::workload::read_files_in_order(os, &order).unwrap()
    });
    advisor.record(t_after.as_secs_f64());
    assert!(
        !advisor.should_refresh(),
        "fresh directory must look healthy"
    );
}

#[test]
fn passive_observer_learns_without_probing() {
    use graybox_icl::graybox::observe::PassiveObserver;
    // An application scans a mixed-warmth corpus through the observer; the
    // observer's residency picture must match the oracle's — with zero
    // probes issued (every byte read was the application's own traffic).
    let mut sim = Sim::new(SimConfig::small());
    let paths = sim.run_one(|os| make_files(os, "/watch", 8, 1 << 20).unwrap());
    sim.flush_file_cache();
    for warm in [1usize, 5, 6] {
        let p = paths[warm].clone();
        sim.run_one(move |os| {
            let fd = os.open(&p).unwrap();
            os.read_discard(fd, 0, 1 << 20).unwrap();
            os.close(fd).unwrap();
        });
    }
    let inference = sim.run_one({
        let paths = paths.clone();
        move |os| {
            let observed = PassiveObserver::new(os);
            for p in &paths {
                let fd = observed.open(p).unwrap();
                observed.read_discard(fd, 0, 1 << 20).unwrap();
                observed.close(fd).unwrap();
            }
            observed.infer_residency(1)
        }
    });
    let expect: Vec<String> = vec![paths[1].clone(), paths[5].clone(), paths[6].clone()];
    assert_eq!(inference.looks_cached, expect);
    assert_eq!(inference.looks_uncached.len(), 5);
}
