//! Property-based tests over the core data structures and the invariants
//! DESIGN.md calls out, on the in-tree deterministic harness
//! (`gray_toolbox::prop`): fixed case counts, seeded generators, and a
//! printed reproduction seed on failure (see DESIGN.md "Determinism and
//! the hermetic build").

use gray_toolbox::prop::{check, Gen};
use gray_toolbox::rng::{SeedableRng, SliceRandom, StdRng};
use gray_toolbox::{discard_outliers, kmeans1d, two_means, OnlineStats, OutlierPolicy, Summary};
use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
use graybox_icl::simos::{CacheArch, Sim, SimConfig};

// --- Toolbox ---------------------------------------------------------

#[test]
fn online_stats_matches_batch() {
    check("online_stats_matches_batch", 64, |g: &mut Gen| {
        let xs = g.vec(1..200, |g| g.f64(-1e6..1e6));
        let online = OnlineStats::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((online.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((online.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    });
}

#[test]
fn online_merge_equals_concatenation() {
    check("online_merge_equals_concatenation", 64, |g: &mut Gen| {
        let a = g.vec(0..60, |g| g.f64(-1e5..1e5));
        let b = g.vec(0..60, |g| g.f64(-1e5..1e5));
        let mut merged = OnlineStats::from_slice(&a);
        merged.merge(&OnlineStats::from_slice(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = OnlineStats::from_slice(&all);
        assert_eq!(merged.count(), whole.count());
        if !all.is_empty() {
            assert!((merged.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        }
    });
}

#[test]
fn summary_percentiles_are_monotone() {
    check("summary_percentiles_are_monotone", 64, |g: &mut Gen| {
        let xs = g.vec(1..100, |g| g.f64(-1e6..1e6));
        let s = Summary::new(&xs);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = s.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        assert_eq!(s.percentile(0.0), s.min());
        assert_eq!(s.percentile(100.0), s.max());
    });
}

#[test]
fn two_means_is_permutation_invariant() {
    check("two_means_is_permutation_invariant", 64, |g: &mut Gen| {
        let xs = g.vec(2..60, |g| g.f64(0.0..1e6));
        let seed = g.u64(0..1000);
        let c1 = two_means(&xs);
        let mut shuffled = xs.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let c2 = two_means(&shuffled);
        assert!((c1.within_ss - c2.within_ss).abs() < 1e-6 * (1.0 + c1.within_ss));
        let mut s1 = c1.sizes.clone();
        let mut s2 = c2.sizes.clone();
        s1.sort_unstable();
        s2.sort_unstable();
        assert_eq!(s1, s2);
    });
}

#[test]
fn kmeans_within_ss_decreases_with_k() {
    check("kmeans_within_ss_decreases_with_k", 64, |g: &mut Gen| {
        let xs = g.vec(4..40, |g| g.f64(0.0..1e4));
        let w1 = kmeans1d(&xs, 1).within_ss;
        let w2 = kmeans1d(&xs, 2).within_ss;
        let w3 = kmeans1d(&xs, 3).within_ss;
        assert!(w2 <= w1 + 1e-9);
        assert!(w3 <= w2 + 1e-9);
    });
}

#[test]
fn outlier_filter_is_idempotent_under_iqr() {
    check(
        "outlier_filter_is_idempotent_under_iqr",
        64,
        |g: &mut Gen| {
            let xs = g.vec(3..80, |g| g.f64(0.0..1e3));
            let policy = OutlierPolicy::Iqr { k: 1.5 };
            let once = discard_outliers(&xs, policy);
            let twice = discard_outliers(&once, policy);
            // Filtering can only shrink, and survivors of the second pass are
            // a subset of the first.
            assert!(twice.len() <= once.len());
            assert!(twice.iter().all(|x| once.contains(x)));
        },
    );
}

// --- Simulated OS ------------------------------------------------------

#[test]
fn fs_contents_survive_arbitrary_write_read_sequences() {
    check(
        "fs_contents_survive_arbitrary_write_read_sequences",
        64,
        |g: &mut Gen| {
            let ops = g.vec(1..25, |g| {
                (g.range(0u8..4), g.usize(0..6), g.range(0u16..2048))
            });
            // Model-based test: simos file contents vs a Vec<u8> model.
            let mut sim = Sim::new(SimConfig::small().without_noise());
            sim.run_one(move |os| {
                let mut model: Vec<Vec<u8>> = vec![Vec::new(); 6];
                let mut exists = [false; 6];
                for (op, slot, len) in ops {
                    let path = format!("/m{slot}");
                    match op {
                        0 => {
                            // Write (create if needed) at a pseudo-random offset.
                            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                            let off = (len as usize * 7) % 4000;
                            if !exists[slot] {
                                let fd = os.create(&path).unwrap();
                                os.close(fd).unwrap();
                                exists[slot] = true;
                                model[slot].clear();
                            }
                            let fd = os.open(&path).unwrap();
                            os.write_at(fd, off as u64, &data).unwrap();
                            os.close(fd).unwrap();
                            if model[slot].len() < off + data.len() {
                                model[slot].resize(off + data.len(), 0);
                            }
                            model[slot][off..off + data.len()].copy_from_slice(&data);
                        }
                        1 => {
                            // Full read-back and compare.
                            if exists[slot] {
                                let got = os.read_to_vec(&path).unwrap();
                                assert_eq!(got, model[slot], "content mismatch on {path}");
                            }
                        }
                        2 => {
                            // Unlink.
                            if exists[slot] {
                                os.unlink(&path).unwrap();
                                exists[slot] = false;
                                model[slot].clear();
                            }
                        }
                        _ => {
                            // Rename to a sibling slot if free.
                            let dst_slot = (slot + 1) % 6;
                            let dst = format!("/m{dst_slot}");
                            if exists[slot] && !exists[dst_slot] {
                                os.rename(&path, &dst).unwrap();
                                exists[slot] = false;
                                exists[dst_slot] = true;
                                model[dst_slot] = std::mem::take(&mut model[slot]);
                            }
                        }
                    }
                }
                // Final sweep.
                for slot in 0..6 {
                    if exists[slot] {
                        let got = os.read_to_vec(&format!("/m{slot}")).unwrap();
                        assert_eq!(got, model[slot]);
                    }
                }
            });
        },
    );
}

#[test]
fn cache_never_exceeds_capacity() {
    check("cache_never_exceeds_capacity", 64, |g: &mut Gen| {
        let accesses = g.vec(1..300, |g| (g.u64(0..4), g.u64(0..64), g.bool()));
        let capacity = g.u64(4..64);
        let mut cache =
            graybox_icl::simos::cache::PageCache::new(CacheArch::Unified, capacity, 4096);
        for (ino, page, dirty) in accesses {
            let id = graybox_icl::simos::cache::PageId {
                owner: graybox_icl::simos::cache::Owner::File { dev: 0, ino },
                page,
            };
            if !cache.lookup_touch(id) {
                cache.insert(id, dirty);
            }
            assert!(cache.resident_pages() as u64 <= capacity);
        }
    });
}

#[test]
fn sticky_cache_never_exceeds_capacity_either() {
    check(
        "sticky_cache_never_exceeds_capacity_either",
        64,
        |g: &mut Gen| {
            let accesses = g.vec(1..300, |g| (g.u64(0..4), g.u64(0..64)));
            let capacity = g.u64(4..64);
            let mut cache =
                graybox_icl::simos::cache::PageCache::new(CacheArch::UnifiedSticky, capacity, 4096);
            for (ino, page) in accesses {
                let id = graybox_icl::simos::cache::PageId {
                    owner: graybox_icl::simos::cache::Owner::File { dev: 0, ino },
                    page,
                };
                if !cache.lookup_touch(id) {
                    cache.insert(id, false);
                }
                assert!(cache.resident_pages() as u64 <= capacity);
            }
        },
    );
}

#[test]
fn memory_round_trips_through_swap() {
    check("memory_round_trips_through_swap", 16, |g: &mut Gen| {
        let extra_pages = g.u64(1..64);
        // Write-touch more pages than memory holds, then read back: every
        // page must come back (value plumbing is modelled; what matters is
        // no lost pages, no panics, monotone time).
        let mut cfg = SimConfig::small().without_noise();
        cfg.mem_bytes = 16 << 20;
        cfg.kernel_reserve_bytes = 2 << 20;
        let mut sim = Sim::new(cfg);
        sim.run_one(move |os| {
            let pages = (14u64 << 20) / 4096 + extra_pages;
            let r = os.mem_alloc(pages * 4096).unwrap();
            let mut last = os.now();
            for p in 0..pages {
                os.mem_touch_write(r, p).unwrap();
                let now = os.now();
                assert!(now >= last, "virtual time must be monotone");
                last = now;
            }
            for p in 0..pages {
                os.mem_touch_read(r, p).unwrap();
            }
            os.mem_free(r).unwrap();
        });
    });
}

// Determinism deserves exact (non-randomized) treatment: full trace equality.
#[test]
fn simulation_replays_identically() {
    let run = || {
        let mut sim = Sim::new(SimConfig::small().with_seed(1234));
        let t = sim.run_one(|os| {
            os.mkdir("/d").unwrap();
            for i in 0..20 {
                os.write_file(&format!("/d/f{i}"), &vec![i as u8; 3000])
                    .unwrap();
            }
            let fldc = graybox_icl::graybox::fldc::Fldc::new(os);
            let ranks = fldc.order_directory("/d").unwrap();
            let fd = os.open(&ranks[0].path).unwrap();
            os.read_discard(fd, 0, 3000).unwrap();
            os.close(fd).unwrap();
            os.now()
        });
        (t, sim.oracle().stats())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must replay the same trace");
}
