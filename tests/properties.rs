//! Property-based tests (proptest) over the core data structures and the
//! invariants DESIGN.md calls out.

use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
use graybox_icl::simos::{CacheArch, Sim, SimConfig};
use gray_toolbox::{discard_outliers, kmeans1d, two_means, OnlineStats, OutlierPolicy, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Toolbox ---------------------------------------------------------

    #[test]
    fn online_stats_matches_batch(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let online = OnlineStats::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((online.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((online.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    #[test]
    fn online_merge_equals_concatenation(
        a in prop::collection::vec(-1e5f64..1e5, 0..60),
        b in prop::collection::vec(-1e5f64..1e5, 0..60),
    ) {
        let mut merged = OnlineStats::from_slice(&a);
        merged.merge(&OnlineStats::from_slice(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = OnlineStats::from_slice(&all);
        prop_assert_eq!(merged.count(), whole.count());
        if !all.is_empty() {
            prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        }
    }

    #[test]
    fn summary_percentiles_are_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::new(&xs);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        prop_assert_eq!(s.percentile(0.0), s.min());
        prop_assert_eq!(s.percentile(100.0), s.max());
    }

    #[test]
    fn two_means_is_permutation_invariant(
        xs in prop::collection::vec(0f64..1e6, 2..60),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let c1 = two_means(&xs);
        let mut shuffled = xs.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let c2 = two_means(&shuffled);
        prop_assert!((c1.within_ss - c2.within_ss).abs() < 1e-6 * (1.0 + c1.within_ss));
        let mut s1 = c1.sizes.clone();
        let mut s2 = c2.sizes.clone();
        s1.sort_unstable();
        s2.sort_unstable();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn kmeans_within_ss_decreases_with_k(xs in prop::collection::vec(0f64..1e4, 4..40)) {
        let w1 = kmeans1d(&xs, 1).within_ss;
        let w2 = kmeans1d(&xs, 2).within_ss;
        let w3 = kmeans1d(&xs, 3).within_ss;
        prop_assert!(w2 <= w1 + 1e-9);
        prop_assert!(w3 <= w2 + 1e-9);
    }

    #[test]
    fn outlier_filter_is_idempotent_under_iqr(
        xs in prop::collection::vec(0f64..1e3, 3..80),
    ) {
        let policy = OutlierPolicy::Iqr { k: 1.5 };
        let once = discard_outliers(&xs, policy);
        let twice = discard_outliers(&once, policy);
        // Filtering can only shrink, and survivors of the second pass are
        // a subset of the first.
        prop_assert!(twice.len() <= once.len());
        prop_assert!(twice.iter().all(|x| once.contains(x)));
    }

    // --- Simulated OS ------------------------------------------------------

    #[test]
    fn fs_contents_survive_arbitrary_write_read_sequences(
        ops in prop::collection::vec((0u8..4, 0usize..6, 0u16..2048), 1..25)
    ) {
        // Model-based test: simos file contents vs a Vec<u8> model.
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(move |os| {
            let mut model: Vec<Vec<u8>> = vec![Vec::new(); 6];
            let mut exists = [false; 6];
            for (op, slot, len) in ops {
                let path = format!("/m{slot}");
                match op {
                    0 => {
                        // Write (create if needed) at a pseudo-random offset.
                        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                        let off = (len as usize * 7) % 4000;
                        if !exists[slot] {
                            let fd = os.create(&path).unwrap();
                            os.close(fd).unwrap();
                            exists[slot] = true;
                            model[slot].clear();
                        }
                        let fd = os.open(&path).unwrap();
                        os.write_at(fd, off as u64, &data).unwrap();
                        os.close(fd).unwrap();
                        if model[slot].len() < off + data.len() {
                            model[slot].resize(off + data.len(), 0);
                        }
                        model[slot][off..off + data.len()].copy_from_slice(&data);
                    }
                    1 => {
                        // Full read-back and compare.
                        if exists[slot] {
                            let got = os.read_to_vec(&path).unwrap();
                            assert_eq!(got, model[slot], "content mismatch on {path}");
                        }
                    }
                    2 => {
                        // Unlink.
                        if exists[slot] {
                            os.unlink(&path).unwrap();
                            exists[slot] = false;
                            model[slot].clear();
                        }
                    }
                    _ => {
                        // Rename to a sibling slot if free.
                        let dst_slot = (slot + 1) % 6;
                        let dst = format!("/m{dst_slot}");
                        if exists[slot] && !exists[dst_slot] {
                            os.rename(&path, &dst).unwrap();
                            exists[slot] = false;
                            exists[dst_slot] = true;
                            model[dst_slot] = std::mem::take(&mut model[slot]);
                        }
                    }
                }
            }
            // Final sweep.
            for slot in 0..6 {
                if exists[slot] {
                    let got = os.read_to_vec(&format!("/m{slot}")).unwrap();
                    assert_eq!(got, model[slot]);
                }
            }
        });
    }

    #[test]
    fn cache_never_exceeds_capacity(
        accesses in prop::collection::vec((0u64..4, 0u64..64, prop::bool::ANY), 1..300),
        capacity in 4u64..64,
    ) {
        let mut cache = graybox_icl::simos::cache::PageCache::new(
            CacheArch::Unified, capacity, 4096,
        );
        for (ino, page, dirty) in accesses {
            let id = graybox_icl::simos::cache::PageId {
                owner: graybox_icl::simos::cache::Owner::File { dev: 0, ino },
                page,
            };
            if !cache.lookup_touch(id) {
                cache.insert(id, dirty);
            }
            prop_assert!(cache.resident_pages() as u64 <= capacity);
        }
    }

    #[test]
    fn sticky_cache_never_exceeds_capacity_either(
        accesses in prop::collection::vec((0u64..4, 0u64..64), 1..300),
        capacity in 4u64..64,
    ) {
        let mut cache = graybox_icl::simos::cache::PageCache::new(
            CacheArch::UnifiedSticky, capacity, 4096,
        );
        for (ino, page) in accesses {
            let id = graybox_icl::simos::cache::PageId {
                owner: graybox_icl::simos::cache::Owner::File { dev: 0, ino },
                page,
            };
            if !cache.lookup_touch(id) {
                cache.insert(id, false);
            }
            prop_assert!(cache.resident_pages() as u64 <= capacity);
        }
    }

    #[test]
    fn memory_round_trips_through_swap(extra_pages in 1u64..64) {
        // Write-touch more pages than memory holds, then read back: every
        // page must come back (value plumbing is modelled; what matters is
        // no lost pages, no panics, monotone time).
        let mut cfg = SimConfig::small().without_noise();
        cfg.mem_bytes = 16 << 20;
        cfg.kernel_reserve_bytes = 2 << 20;
        let mut sim = Sim::new(cfg);
        sim.run_one(move |os| {
            let pages = (14u64 << 20) / 4096 + extra_pages;
            let r = os.mem_alloc(pages * 4096).unwrap();
            let mut last = os.now();
            for p in 0..pages {
                os.mem_touch_write(r, p).unwrap();
                let now = os.now();
                assert!(now >= last, "virtual time must be monotone");
                last = now;
            }
            for p in 0..pages {
                os.mem_touch_read(r, p).unwrap();
            }
            os.mem_free(r).unwrap();
        });
    }
}

// Determinism deserves exact (non-proptest) treatment: full trace equality.
#[test]
fn simulation_replays_identically() {
    let run = || {
        let mut sim = Sim::new(SimConfig::small().with_seed(1234));
        let t = sim.run_one(|os| {
            os.mkdir("/d").unwrap();
            for i in 0..20 {
                os.write_file(&format!("/d/f{i}"), &vec![i as u8; 3000]).unwrap();
            }
            let fldc = graybox_icl::graybox::fldc::Fldc::new(os);
            let ranks = fldc.order_directory("/d").unwrap();
            let fd = os.open(&ranks[0].path).unwrap();
            os.read_discard(fd, 0, 3000).unwrap();
            os.close(fd).unwrap();
            os.now()
        });
        (t, sim.oracle().stats())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must replay the same trace");
}
