//! Equivalence properties for the batched probe engine.
//!
//! For any cache state, the batched (`probe_batch`) and scalar
//! (per-probe `timed(read_byte)`) probe paths must classify that state
//! identically: the same per-unit measurements, the same extents, and
//! the same fastest-first sort order. Under simos this is bit-exact by
//! construction — the kernel's batch services each probe with the exact
//! scalar charging sequence, so virtual times and the noise stream
//! match; the tests here are the executable form of that claim.
//!
//! Replay recipes — the harness prints the failing case's seed in a
//! banner; rerun it (or widen the sweep) with:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q batched_and_scalar_classify_identically_under_mock
//! PROP_SEED=0x<seed> cargo test -q batched_and_scalar_classify_identically_under_simos
//! PROP_CASES=200 cargo test -q --test probe_equivalence
//! ```

use graybox_icl::apps::workload::make_file;
use graybox_icl::graybox::fccd::{Fccd, FccdParams};
use graybox_icl::graybox::mock::MockOs;
use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
use graybox_icl::simos::{Sim, SimConfig};
use graybox_icl::toolbox::prop::{check, Gen};

/// Random file geometry, random warm pages, mock backend: both probe
/// paths must yield identical unit measurements and identical plans.
#[test]
fn batched_and_scalar_classify_identically_under_mock() {
    check(
        "batched_and_scalar_classify_identically_under_mock",
        48,
        |g: &mut Gen| {
            let page = 4096u64;
            let unit_pages = g.u64(1..6);
            let access_unit = unit_pages * page;
            let units = g.u64(1..10);
            // A ragged tail exercises the final short access unit.
            let size = units * access_unit + g.u64(0..access_unit);
            let params = FccdParams {
                access_unit,
                prediction_unit: page,
                probe_rounds: g.range(1u32..4),
                seed: g.u64(1..u64::MAX),
                ..FccdParams::default()
            };
            let total_pages = size.div_ceil(page);
            let warm: Vec<u64> = (0..total_pages).filter(|_| g.bool()).collect();

            let run = |batched: bool| {
                let os = MockOs::new(1 << 20, 16);
                os.write_file("/f", &vec![0u8; size as usize]).unwrap();
                os.flush_cache();
                os.warm("/f", warm.iter().copied());
                let fccd = Fccd::with_fixed_seed(&os, params.clone());
                let fd = os.open("/f").unwrap();
                let report = if batched {
                    fccd.probe_file(fd, size)
                } else {
                    fccd.probe_file_scalar(fd, size)
                };
                os.close(fd).unwrap();
                report
            };
            let batched = run(true);
            let scalar = run(false);
            assert_eq!(batched.units, scalar.units, "unit measurements diverge");
            assert_eq!(batched.plan(), scalar.plan(), "plan order diverges");
        },
    );
}

/// The same property end to end through the simulated kernel: two
/// identically prepared machines, one probed through the vectored
/// batch syscall, one through individual timed reads, must report
/// bit-identical measurements (the batch replays the scalar charging
/// sequence per probe) and therefore identical plans.
#[test]
fn batched_and_scalar_classify_identically_under_simos() {
    check(
        "batched_and_scalar_classify_identically_under_simos",
        12,
        |g: &mut Gen| {
            let access_unit = 1u64 << 20;
            let units = g.u64(1..6);
            let size = units * access_unit;
            let params = FccdParams {
                access_unit,
                prediction_unit: 256 << 10,
                probe_rounds: g.range(1u32..3),
                seed: g.u64(1..u64::MAX),
                ..FccdParams::default()
            };
            // Warm a random subset of access units.
            let warm: Vec<u64> = (0..units).filter(|_| g.bool()).collect();

            let run = |batched: bool| {
                let mut sim = Sim::new(SimConfig::small());
                sim.run_one(move |os| make_file(os, "/f", size).unwrap());
                sim.flush_file_cache();
                let warm = warm.clone();
                let params = params.clone();
                sim.run_one(move |os| {
                    let fd = os.open("/f").unwrap();
                    for &u in &warm {
                        os.read_discard(fd, u * access_unit, access_unit).unwrap();
                    }
                    let fccd = Fccd::with_fixed_seed(os, params);
                    let report = if batched {
                        fccd.probe_file(fd, size)
                    } else {
                        fccd.probe_file_scalar(fd, size)
                    };
                    os.close(fd).unwrap();
                    report
                })
            };
            let batched = run(true);
            let scalar = run(false);
            assert_eq!(batched.units, scalar.units, "unit measurements diverge");
            assert_eq!(batched.plan(), scalar.plan(), "plan order diverges");
        },
    );
}
