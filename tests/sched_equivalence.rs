//! Equivalence properties for the probe scheduler (`gray-sched`).
//!
//! A scheduler at concurrency 1 must be invisible: submitting FCCD's
//! per-file probe plans to a one-worker [`Scheduler`] and dispatching
//! them through an executor must issue the same syscalls in the same
//! order as the inline `Fccd` path, and therefore rank and classify any
//! cache state bit-identically. Under simos this holds even with timing
//! noise enabled, because each dispatched process starts at the latest
//! virtual time the previous one reached — exactly where the inline
//! path's single process would have been — so the charge sequence, the
//! CPU-bank bookings, and the noise stream all align.
//!
//! The third test covers the MAC side of the scheduler: pooling
//! `gb_alloc` requests behind one [`MacAdmissionQueue`] probe pass must
//! not blind MAC's paging detection — with a memory hog running
//! concurrently, the shared probe still sees the daemon wake up and the
//! pooled grants shrink accordingly.
//!
//! Replay recipes — the harness prints the failing case's seed in a
//! banner; rerun it (or widen the sweep) with:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q sched_and_direct_classify_identically_under_mock
//! PROP_SEED=0x<seed> cargo test -q sched_and_direct_classify_identically_under_simos
//! PROP_CASES=100 cargo test -q --test sched_equivalence
//! ```

use graybox_icl::apps::workload::make_file;
use graybox_icl::graybox::fccd::{classify_ranks, Fccd, FccdParams};
use graybox_icl::graybox::mac::{Mac, MacParams};
use graybox_icl::graybox::mock::MockOs;
use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
use graybox_icl::sched::{
    AdmissionRequest, FccdFleet, InlineExecutor, MacAdmissionQueue, SchedConfig, Scheduler,
    SimExecutor,
};
use graybox_icl::simos::exec::Workload;
use graybox_icl::simos::{Sim, SimConfig, SimProc};
use graybox_icl::toolbox::prop::{check, Gen};
use graybox_icl::toolbox::GrayDuration;

/// A one-worker scheduler: waves of one plan, dispatched in submission
/// order — the configuration the equivalence claim is about.
fn serial_scheduler() -> Scheduler {
    Scheduler::new(SchedConfig {
        concurrency: 1,
        ..SchedConfig::default()
    })
}

/// Random file set, random warm pages, mock backend: ranking through a
/// concurrency-1 scheduler must be bit-identical to inline `Fccd`.
#[test]
fn sched_and_direct_classify_identically_under_mock() {
    check(
        "sched_and_direct_classify_identically_under_mock",
        32,
        |g: &mut Gen| {
            let page = 4096u64;
            let access_unit = g.u64(1..5) * page;
            let params = FccdParams {
                access_unit,
                prediction_unit: page,
                probe_rounds: g.range(1u32..3),
                seed: g.u64(1..u64::MAX),
                ..FccdParams::default()
            };
            let nfiles = g.range(2usize..5);
            // Ragged tails exercise the final short access unit per file.
            let files: Vec<(String, u64)> = (0..nfiles)
                .map(|i| {
                    let size = g.u64(1..8) * access_unit + g.u64(0..access_unit);
                    (format!("/f{i}"), size)
                })
                .collect();
            let warm: Vec<Vec<u64>> = files
                .iter()
                .map(|(_, size)| (0..size.div_ceil(page)).filter(|_| g.bool()).collect())
                .collect();

            // Both sides get their own identically-prepared backend: same
            // files, same flush, same warm pages.
            let fresh = || {
                let os = MockOs::new(1 << 20, 16);
                for (path, size) in &files {
                    os.write_file(path, &vec![0u8; *size as usize]).unwrap();
                }
                os.flush_cache();
                for ((path, _), pages) in files.iter().zip(&warm) {
                    os.warm(path, pages.iter().copied());
                }
                os
            };

            let direct = {
                let os = fresh();
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                Fccd::with_fixed_seed(&os, params.clone()).order_files(&paths)
            };
            let sched = {
                let os = fresh();
                // sub_batch 0: one probe_batch per file, exactly like the
                // inline path's single vectored call.
                let fleet = FccdFleet::with_fixed_seed(&os, params.clone(), 0);
                let mut sched = serial_scheduler();
                let mut exec = InlineExecutor::new(&os);
                fleet.order_files(&mut sched, &mut exec, &files)
            };
            assert_eq!(direct, sched, "concurrency-1 scheduler ranks diverge");
            // Classification is a pure function of the ranks, so equal
            // ranks force equal splits; assert it anyway as the headline.
            let (d, s) = (classify_ranks(direct), classify_ranks(sched));
            assert_eq!(d.cached, s.cached, "cached split diverges");
            assert_eq!(d.uncached, s.uncached, "uncached split diverges");
        },
    );
}

/// The same property end to end through the simulated kernel, with
/// timing noise on: the inline path probes all files from one process;
/// the scheduler path builds the fleet in one process and then runs one
/// process per plan. Each plan process starts at the latest virtual time
/// reached — exactly where the inline process would have opened that
/// file — so every charge lands at the same absolute time, the noise
/// stream stays in step, and the ranks are bit-identical.
#[test]
fn sched_and_direct_classify_identically_under_simos() {
    check(
        "sched_and_direct_classify_identically_under_simos",
        8,
        |g: &mut Gen| {
            let access_unit = 1u64 << 20;
            let params = FccdParams {
                access_unit,
                prediction_unit: 256 << 10,
                probe_rounds: g.range(1u32..3),
                seed: g.u64(1..u64::MAX),
                ..FccdParams::default()
            };
            let nfiles = g.range(2usize..4);
            let files: Vec<(String, u64)> = (0..nfiles)
                .map(|i| (format!("/f{i}"), g.u64(1..4) * access_unit))
                .collect();
            // Warm a random subset of each file's access units.
            let warm: Vec<Vec<u64>> = files
                .iter()
                .map(|(_, size)| (0..size / access_unit).filter(|_| g.bool()).collect())
                .collect();

            // Identical machines up to the moment the detector is built:
            // create the files, flush, warm — each in the same processes.
            let boot = || {
                let mut sim = Sim::new(SimConfig::small());
                let setup = files.clone();
                sim.run_one(move |os| {
                    for (path, size) in &setup {
                        make_file(os, path, *size).unwrap();
                    }
                });
                sim.flush_file_cache();
                let warm_files: Vec<(String, Vec<u64>)> = files
                    .iter()
                    .zip(&warm)
                    .map(|((p, _), u)| (p.clone(), u.clone()))
                    .collect();
                sim.run_one(move |os| {
                    for (path, units) in &warm_files {
                        let fd = os.open(path).unwrap();
                        for &u in units {
                            os.read_discard(fd, u * access_unit, access_unit).unwrap();
                        }
                        os.close(fd).unwrap();
                    }
                });
                sim
            };

            let direct = {
                let mut sim = boot();
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let params = params.clone();
                sim.run_one(move |os| Fccd::with_fixed_seed(os, params).order_files(&paths))
            };
            let sched = {
                let mut sim = boot();
                let params = params.clone();
                let fleet = sim.run_one(move |os| FccdFleet::with_fixed_seed(os, params, 0));
                let mut sched = serial_scheduler();
                let mut exec = SimExecutor::new(&mut sim);
                fleet.order_files(&mut sched, &mut exec, &files)
            };
            assert_eq!(direct, sched, "concurrency-1 scheduler ranks diverge");
            let (d, s) = (classify_ranks(direct), classify_ranks(sched));
            assert_eq!(d.cached, s.cached, "cached split diverges");
            assert_eq!(d.uncached, s.uncached, "uncached split diverges");
        },
    );
}

/// The trace a concurrency-1 dispatch emits is a pure function of the
/// case seed: two identical runs produce identical `(wave, span, event)`
/// streams. Sequence numbers and timestamps are excluded — seq is global
/// across threads and other tests in this binary may emit while our
/// capture is open (which is also why records are filtered to this
/// thread's lane; `MockOs` plus [`InlineExecutor`] keeps every event of
/// the dispatch on the test thread).
#[test]
fn serial_dispatch_trace_is_deterministic() {
    use graybox_icl::toolbox::trace;
    check(
        "serial_dispatch_trace_is_deterministic",
        8,
        |g: &mut Gen| {
            let page = 4096u64;
            let params = FccdParams {
                access_unit: 2 * page,
                prediction_unit: page,
                seed: g.u64(1..u64::MAX),
                ..FccdParams::default()
            };
            let files: Vec<(String, u64)> = (0..g.range(2usize..5))
                .map(|i| (format!("/f{i}"), g.u64(1..6) * page))
                .collect();
            let warm: Vec<Vec<u64>> = files
                .iter()
                .map(|(_, size)| (0..size.div_ceil(page)).filter(|_| g.bool()).collect())
                .collect();
            let run = || {
                let cap = trace::capture();
                let os = MockOs::new(1 << 20, 16);
                for (path, size) in &files {
                    os.write_file(path, &vec![0u8; *size as usize]).unwrap();
                }
                os.flush_cache();
                for ((path, _), pages) in files.iter().zip(&warm) {
                    os.warm(path, pages.iter().copied());
                }
                let fleet = FccdFleet::with_fixed_seed(&os, params.clone(), 0);
                let mut sched = serial_scheduler();
                let mut exec = InlineExecutor::new(&os);
                let _ = fleet.classify_files(&mut sched, &mut exec, &files);
                let lane = cap.lane();
                trace::drain()
                    .into_iter()
                    .filter(|r| r.lane == lane)
                    .map(|r| (r.wave, r.span, r.event))
                    .collect::<Vec<_>>()
            };
            let a = run();
            let b = run();
            assert!(!a.is_empty(), "instrumented dispatch must emit events");
            assert!(
                a.iter().any(|(w, _, _)| w.is_some()),
                "dispatch must stamp wave identity onto in-wave events"
            );
            assert_eq!(
                a, b,
                "concurrency-1 event stream must be seed-deterministic"
            );
        },
    );
}

const MB: u64 = 1 << 20;

/// Total bytes granted to two pooled `gb_alloc` requests, optionally with
/// a memory hog running concurrently in the same simulation.
fn pooled_grant_total(contended: bool) -> u64 {
    let mut sim = Sim::new(SimConfig::small().without_noise());
    let requests = [AdmissionRequest {
        min: 2 * MB,
        max: 24 * MB,
        multiple: MB,
    }; 2];
    let admit = move |os: &SimProc| -> u64 {
        // Give the hog time to establish residency before probing, so the
        // shared probe pass measures a genuinely contended machine.
        os.sleep(GrayDuration::from_millis(100));
        let mac = Mac::new(os, MacParams::default());
        let mut queue = MacAdmissionQueue::new();
        for req in requests {
            queue.submit(req);
        }
        let grants = queue.admit_all(&mac).unwrap();
        grants.iter().flatten().map(|g| g.bytes).sum()
    };
    if !contended {
        return sim.run_one(admit);
    }
    let hog = |os: &SimProc| -> u64 {
        let bytes = 28 * MB;
        let region = os.mem_alloc(bytes).unwrap();
        let pages = bytes / os.page_size();
        // Sweep the working set repeatedly so it stays hot across the
        // admission pass instead of aging into easy eviction fodder.
        for _ in 0..3 {
            for p in 0..pages {
                os.mem_touch_write(region, p).unwrap();
            }
            os.sleep(GrayDuration::from_millis(50));
        }
        0
    };
    let workloads: Vec<(String, Workload<'_, u64>)> = vec![
        ("hog".to_string(), Box::new(hog)),
        ("admit".to_string(), Box::new(admit)),
    ];
    sim.run(workloads).pop().expect("admission result")
}

/// Pooling requests behind one shared probe pass must not blind MAC's
/// paging detection: with a hog holding (and re-touching) half of memory,
/// the shared estimate sees the page daemon wake up and the pooled grants
/// come back much smaller than on an idle machine — instead of
/// overcommitting and swapping the competitor out.
#[test]
fn mac_admission_queue_detects_competition() {
    let idle = pooled_grant_total(false);
    let contended = pooled_grant_total(true);
    assert!(
        idle >= 32 * MB,
        "idle machine should admit most of the pooled ceiling, got {} MB",
        idle / MB
    );
    assert!(
        contended + 8 * MB <= idle,
        "competition must shrink pooled grants: idle {} MB vs contended {} MB",
        idle / MB,
        contended / MB
    );
    // The grants plus the hog's hot set must still fit in physical
    // memory — the queue backed off rather than overcommitting.
    assert!(
        contended + 28 * MB <= 64 * MB,
        "pooled grants overcommit a contended machine: {} MB granted",
        contended / MB
    );
}
