//! Equivalence properties for the inference daemon (`gbd`).
//!
//! A single-tenant daemon at scheduler concurrency 1 must be invisible:
//! submitting an FCCD query through the mailbox, the cache-miss path,
//! admission, and the shared scheduler must classify bit-identically to
//! the direct one-shot `Fccd` path on an identically-booted machine —
//! and charge the same virtual time, because the daemon's bookkeeping
//! (cache lookups, admission counters, trace emission) never touches
//! the simulated clock. The same holds for a MAC availability query
//! against a direct `available_estimate`.
//!
//! This rests on the concurrency-1 scheduler equivalence pinned by
//! `tests/sched_equivalence.rs`: the daemon builds its `FccdFleet` in
//! its own process and dispatches one plan at a time (`sub_batch` 0),
//! exactly the configuration that test proves issues the same syscalls
//! in the same order as inline `Fccd`. `decorrelate_seeds` defaults to
//! off, so the daemon's probe offsets come from the same fixed seed.
//!
//! Replay a failing case with the seed from the harness banner:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q --test gbd_equivalence
//! ```

use graybox_icl::gbd::{Gbd, GbdConfig, Query, Reply};
use graybox_icl::graybox::fccd::{classify_ranks, Fccd, FccdParams};
use graybox_icl::graybox::mac::Mac;
use graybox_icl::graybox::os::GrayBoxOs;
use graybox_icl::sched::SchedConfig;
use graybox_icl::simos::{Sim, SimConfig};
use graybox_icl::toolbox::prop::{check, Gen};

const ACCESS_UNIT: u64 = 1 << 20;

/// FCCD geometry proportioned to `SimConfig::small`, with a fixed probe
/// seed drawn by the property harness.
fn params(seed: u64, probe_rounds: u32) -> FccdParams {
    FccdParams {
        access_unit: ACCESS_UNIT,
        prediction_unit: 256 << 10,
        probe_rounds,
        seed,
        ..FccdParams::default()
    }
}

/// A daemon configured to be equivalence-eligible: one-worker scheduler,
/// whole-plan batches, shared fixed seed.
fn serial_daemon(fccd: FccdParams) -> Gbd {
    let cfg = GbdConfig {
        fccd,
        sched: SchedConfig {
            concurrency: 1,
            sub_batch: 0,
            ..SchedConfig::default()
        },
        ..GbdConfig::default()
    };
    let policy = cfg.churn_policy();
    Gbd::new(cfg, Box::new(policy))
}

/// Identical machines up to the moment the detector runs: same files,
/// same flush, same warm pattern, noise off so the claim is about the
/// daemon's plumbing rather than noise-stream alignment (which the
/// sched equivalence test already covers with noise on).
fn boot(files: &[(String, u64)], warm: &[Vec<u64>]) -> Sim {
    let mut sim = Sim::new(SimConfig::small().without_noise());
    let setup = files.to_vec();
    sim.run_one(move |os| {
        for (path, size) in &setup {
            let fd = os.create(path).unwrap();
            os.write_fill(fd, 0, *size).unwrap();
            os.close(fd).unwrap();
        }
    });
    sim.flush_file_cache();
    let warm_files: Vec<(String, Vec<u64>)> = files
        .iter()
        .zip(warm)
        .map(|((p, _), u)| (p.clone(), u.clone()))
        .collect();
    sim.run_one(move |os| {
        for (path, units) in &warm_files {
            let fd = os.open(path).unwrap();
            for &u in units {
                os.read_discard(fd, u * ACCESS_UNIT, ACCESS_UNIT).unwrap();
            }
            os.close(fd).unwrap();
        }
    });
    sim
}

/// Random file set and warm pattern: the daemon's answer and its final
/// virtual clock must both equal the direct one-shot path's.
#[test]
fn single_tenant_daemon_matches_direct_fccd_bit_for_bit() {
    check(
        "single_tenant_daemon_matches_direct_fccd_bit_for_bit",
        8,
        |g: &mut Gen| {
            let p = params(g.u64(1..u64::MAX), g.range(1u32..3));
            let nfiles = g.range(2usize..4);
            let files: Vec<(String, u64)> = (0..nfiles)
                .map(|i| (format!("/f{i}"), g.u64(1..4) * ACCESS_UNIT))
                .collect();
            let warm: Vec<Vec<u64>> = files
                .iter()
                .map(|(_, size)| (0..size / ACCESS_UNIT).filter(|_| g.bool()).collect())
                .collect();

            let (direct, direct_now) = {
                let mut sim = boot(&files, &warm);
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let p = p.clone();
                let ranks = sim.run_one(move |os| Fccd::with_fixed_seed(os, p).order_files(&paths));
                (classify_ranks(ranks), sim.now())
            };

            let mut sim = boot(&files, &warm);
            let mut gbd = serial_daemon(p);
            let client = gbd.register_tenant("solo").unwrap();
            let ticket = client.submit(Query::FccdClassify {
                files: files.clone(),
            });
            gbd.serve(&mut sim);
            let resp = client.take(ticket).expect("served in one tick");
            assert!(!resp.from_cache, "first query must execute, not hit");
            let Reply::Classified {
                cached,
                uncached,
                separation,
            } = resp.reply
            else {
                panic!("FCCD query must classify, got {:?}", resp.reply);
            };
            assert_eq!(direct.cached, cached, "cached split diverges");
            assert_eq!(direct.uncached, uncached, "uncached split diverges");
            assert_eq!(
                direct.separation.to_bits(),
                separation.to_bits(),
                "separation diverges"
            );
            assert_eq!(
                direct_now,
                sim.now(),
                "daemon path must charge identical virtual time"
            );
        },
    );
}

/// The MAC side of the same claim: one `MacAvailable` query through the
/// daemon equals a direct `available_estimate`, in value and in virtual
/// time charged.
#[test]
fn single_tenant_daemon_matches_direct_mac_estimate() {
    check(
        "single_tenant_daemon_matches_direct_mac_estimate",
        6,
        |g: &mut Gen| {
            let ceiling = g.u64(4..17) * ACCESS_UNIT;
            let cfg = GbdConfig::default();

            let (direct, direct_now) = {
                let mut sim = Sim::new(SimConfig::small().without_noise());
                let params = cfg.mac.clone();
                let bytes = sim
                    .run_one(move |os| Mac::new(os, params).available_estimate(ceiling))
                    .unwrap();
                (bytes, sim.now())
            };

            let mut sim = Sim::new(SimConfig::small().without_noise());
            let policy = cfg.churn_policy();
            let mut gbd = Gbd::new(cfg, Box::new(policy));
            let client = gbd.register_tenant("solo").unwrap();
            let ticket = client.submit(Query::MacAvailable { ceiling });
            gbd.serve(&mut sim);
            let resp = client.take(ticket).expect("served in one tick");
            let Reply::Available { bytes } = resp.reply else {
                panic!("MAC query must estimate, got {:?}", resp.reply);
            };
            assert_eq!(direct, bytes, "availability estimate diverges");
            assert_eq!(
                direct_now,
                sim.now(),
                "daemon path must charge identical virtual time"
            );
        },
    );
}
